//! The main-memory storage engine.
//!
//! An ERMIA-class main-memory database keeps all data in DRAM and persists
//! only the transaction log (paper §1); the storage engine is therefore
//! ordered in-memory tables plus a transaction layer producing WAL records.
//! Tables are `BTreeMap`s over order-preserving encoded keys, so TPC-C's
//! range lookups (customer-by-last-name, latest order, oldest new-order)
//! are native scans.

use crate::log::{LogOp, LogRecord, TableId};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A row image.
pub type Row = Vec<u8>;
/// An encoded, order-preserving key.
pub type Key = Vec<u8>;

#[derive(Debug, Clone)]
struct Versioned {
    row: Row,
    version: u64,
}

/// One table: ordered rows + a version per row for validation.
#[derive(Debug, Default)]
pub struct Table {
    rows: BTreeMap<Key, Versioned>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Why a transaction failed to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A row read by the transaction changed before commit.
    Conflict {
        /// Table of the conflicting read.
        table: TableId,
        /// Key of the conflicting read.
        key: Key,
    },
    /// Insert of a key that already exists.
    DuplicateKey(Key),
    /// Update/delete of a missing key.
    NotFound(Key),
    /// Unknown table id.
    NoSuchTable(TableId),
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Conflict { table, key } => {
                write!(f, "validation conflict on table {table}, key {key:02X?}")
            }
            TxnError::DuplicateKey(k) => write!(f, "duplicate key {k:02X?}"),
            TxnError::NotFound(k) => write!(f, "key not found {k:02X?}"),
            TxnError::NoSuchTable(t) => write!(f, "no such table {t}"),
        }
    }
}

impl std::error::Error for TxnError {}

#[derive(Debug, Clone)]
enum PendingWrite {
    Insert(Key, Row),
    Update(Key, Row),
    Delete(Key),
}

/// An open transaction: buffered writes + read validation set.
#[derive(Debug)]
pub struct TxnCtx {
    id: u64,
    reads: Vec<(TableId, Key, Option<u64>)>,
    writes: Vec<(TableId, PendingWrite)>,
}

impl TxnCtx {
    /// Transaction id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Buffered write count.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

/// The database: a catalog of tables and the transaction layer.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    names: Vec<String>,
    next_txn: u64,
    commits: u64,
    aborts: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table; returns its id.
    pub fn create_table(&mut self, name: &str) -> TableId {
        assert!(self.tables.len() < u16::MAX as usize);
        self.tables.push(Table::default());
        self.names.push(name.to_string());
        (self.tables.len() - 1) as TableId
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.names.iter().position(|n| n == name).map(|i| i as TableId)
    }

    /// Borrow a table.
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id as usize)
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Aborted transactions so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnCtx {
        let id = self.next_txn;
        self.next_txn += 1;
        TxnCtx { id, reads: Vec::new(), writes: Vec::new() }
    }

    /// Transactional point read. Records the observed version for commit
    /// validation. Sees the transaction's own buffered writes.
    pub fn get(&self, ctx: &mut TxnCtx, table: TableId, key: &[u8]) -> Option<Row> {
        // Own writes first (read-your-writes).
        for (t, w) in ctx.writes.iter().rev() {
            if *t != table {
                continue;
            }
            match w {
                PendingWrite::Insert(k, v) | PendingWrite::Update(k, v) if k == key => {
                    return Some(v.clone());
                }
                PendingWrite::Delete(k) if k == key => return None,
                _ => {}
            }
        }
        let slot = self.tables.get(table as usize)?.rows.get(key);
        ctx.reads.push((table, key.to_vec(), slot.map(|s| s.version)));
        slot.map(|s| s.row.clone())
    }

    /// Transactional range scan over `[from, to)`, yielding up to `limit`
    /// `(key, row)` pairs in key order. (Scans validate at item
    /// granularity, not phantom-proof — adequate for the workload model.)
    pub fn scan(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
        limit: usize,
    ) -> Vec<(Key, Row)> {
        let Some(t) = self.tables.get(table as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for (k, v) in t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))) {
            if out.len() >= limit {
                break;
            }
            ctx.reads.push((table, k.clone(), Some(v.version)));
            out.push((k.clone(), v.row.clone()));
        }
        out
    }

    /// Last `(key, row)` in `[from, to)` (e.g. a customer's latest order).
    pub fn last_in_range(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
    ) -> Option<(Key, Row)> {
        let t = self.tables.get(table as usize)?;
        let (k, v) =
            t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))).next_back()?;
        ctx.reads.push((table, k.clone(), Some(v.version)));
        Some((k.clone(), v.row.clone()))
    }

    /// Buffer an insert.
    pub fn insert(&self, ctx: &mut TxnCtx, table: TableId, key: Key, row: Row) {
        ctx.writes.push((table, PendingWrite::Insert(key, row)));
    }

    /// Buffer an update.
    pub fn update(&self, ctx: &mut TxnCtx, table: TableId, key: Key, row: Row) {
        ctx.writes.push((table, PendingWrite::Update(key, row)));
    }

    /// Buffer a delete.
    pub fn delete(&self, ctx: &mut TxnCtx, table: TableId, key: Key) {
        ctx.writes.push((table, PendingWrite::Delete(key)));
    }

    /// Validate and apply the transaction. On success the buffered writes
    /// are installed atomically and the WAL records (ending with a commit
    /// marker) are returned for the log manager to persist.
    pub fn commit(&mut self, ctx: TxnCtx) -> Result<Vec<LogRecord>, TxnError> {
        // Validation: every read version unchanged.
        for (table, key, version) in &ctx.reads {
            let t = self.tables.get(*table as usize).ok_or(TxnError::NoSuchTable(*table))?;
            let current = t.rows.get(key).map(|s| s.version);
            if current != *version {
                self.aborts += 1;
                return Err(TxnError::Conflict { table: *table, key: key.clone() });
            }
        }
        // Pre-check writes for structural errors (atomicity: reject before
        // applying anything).
        for (table, w) in &ctx.writes {
            let t = self.tables.get(*table as usize).ok_or(TxnError::NoSuchTable(*table))?;
            match w {
                PendingWrite::Insert(k, _) => {
                    if t.rows.contains_key(k) {
                        self.aborts += 1;
                        return Err(TxnError::DuplicateKey(k.clone()));
                    }
                }
                PendingWrite::Update(k, _) | PendingWrite::Delete(k) => {
                    if !t.rows.contains_key(k) {
                        // Updating a row this txn itself inserts is legal.
                        let own_insert = ctx.writes.iter().any(|(t2, w2)| {
                            *t2 == *table && matches!(w2, PendingWrite::Insert(k2, _) if k2 == k)
                        });
                        if !own_insert {
                            self.aborts += 1;
                            return Err(TxnError::NotFound(k.clone()));
                        }
                    }
                }
            }
        }
        // Apply + emit log records.
        let mut records = Vec::with_capacity(ctx.writes.len() + 1);
        let txn_id = ctx.id;
        for (table, w) in ctx.writes {
            let t = &mut self.tables[table as usize];
            match w {
                PendingWrite::Insert(k, v) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Insert,
                        table,
                        key: k.clone(),
                        value: v.clone(),
                    });
                    t.rows.insert(k, Versioned { row: v, version: txn_id });
                }
                PendingWrite::Update(k, v) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Update,
                        table,
                        key: k.clone(),
                        value: v.clone(),
                    });
                    t.rows.insert(k, Versioned { row: v, version: txn_id });
                }
                PendingWrite::Delete(k) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Delete,
                        table,
                        key: k.clone(),
                        value: Vec::new(),
                    });
                    t.rows.remove(&k);
                }
            }
        }
        records.push(LogRecord::commit(txn_id));
        self.commits += 1;
        Ok(records)
    }

    /// Apply one *committed* log record directly (recovery / replica redo).
    /// Record application is idempotent for inserts/updates.
    pub fn apply_record(&mut self, rec: &LogRecord) {
        match rec.op {
            LogOp::Commit => {}
            LogOp::Insert | LogOp::Update => {
                let table = rec.table as usize;
                while self.tables.len() <= table {
                    self.create_table(&format!("recovered_{}", self.tables.len()));
                }
                self.tables[table].rows.insert(
                    rec.key.clone(),
                    Versioned { row: rec.value.clone(), version: rec.txn_id },
                );
            }
            LogOp::Delete => {
                if let Some(t) = self.tables.get_mut(rec.table as usize) {
                    t.rows.remove(&rec.key);
                }
            }
        }
    }

    /// Raw (non-transactional) read, e.g. for verification.
    pub fn peek(&self, table: TableId, key: &[u8]) -> Option<&Row> {
        self.tables.get(table as usize)?.rows.get(key).map(|v| &v.row)
    }

    /// The catalog's table names in id order (checkpoint encoding).
    pub fn table_names(&self) -> &[String] {
        &self.names
    }

    /// Export every `(key, row)` of a table in key order (checkpointing).
    pub fn export_table(&self, table: TableId) -> Vec<(Key, Row)> {
        self.tables
            .get(table as usize)
            .map(|t| t.rows.iter().map(|(k, v)| (k.clone(), v.row.clone())).collect())
            .unwrap_or_default()
    }

    /// Install a row directly (checkpoint restore); bypasses transactions.
    pub fn install_row(&mut self, table: TableId, key: Key, row: Row) {
        let t = self.tables.get_mut(table as usize).expect("install_row into missing table");
        t.rows.insert(key, Versioned { row, version: 0 });
    }

    /// A stable fingerprint of all content (tables, keys, rows) for
    /// primary/replica equivalence checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |data: &[u8]| {
            for b in data {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (i, t) in self.tables.iter().enumerate() {
            mix(&(i as u32).to_le_bytes());
            for (k, v) in &t.rows {
                mix(k);
                mix(&v.row);
            }
        }
        h
    }
}

/// Order-preserving key encoding helpers (big-endian fixed-width fields).
pub mod keys {
    /// Append a `u32` big-endian component.
    pub fn push_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a `u64` big-endian component.
    pub fn push_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a fixed-width, zero-padded string component.
    pub fn push_str(out: &mut Vec<u8>, s: &str, width: usize) {
        let bytes = s.as_bytes();
        let take = bytes.len().min(width);
        out.extend_from_slice(&bytes[..take]);
        out.extend(std::iter::repeat_n(0u8, width - take));
    }

    /// Compose a key from `u32` components.
    pub fn composite(parts: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(parts.len() * 4);
        for p in parts {
            push_u32(&mut out, *p);
        }
        out
    }

    /// The smallest key strictly greater than every key with prefix `p`
    /// (for range scans: `[p, successor(p))`).
    pub fn successor(p: &[u8]) -> Vec<u8> {
        let mut out = p.to_vec();
        for i in (0..out.len()).rev() {
            if out[i] != 0xFF {
                out[i] += 1;
                out.truncate(i + 1);
                return out;
            }
        }
        out.push(0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table("t");
        (db, t)
    }

    #[test]
    fn insert_commit_read_back() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k1".to_vec(), b"v1".to_vec());
        let recs = db.commit(ctx).unwrap();
        assert_eq!(recs.len(), 2, "insert + commit marker");
        assert_eq!(recs.last().unwrap().op, LogOp::Commit);
        let mut ctx2 = db.begin();
        assert_eq!(db.get(&mut ctx2, t, b"k1"), Some(b"v1".to_vec()));
        assert_eq!(db.commits(), 1);
    }

    #[test]
    fn read_your_own_writes() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k".to_vec(), b"v0".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), Some(b"v0".to_vec()));
        db.update(&mut ctx, t, b"k".to_vec(), b"v1".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), Some(b"v1".to_vec()));
        db.delete(&mut ctx, t, b"k".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), None);
    }

    #[test]
    fn conflict_detected_on_changed_read() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        db.insert(&mut setup, t, b"k".to_vec(), b"v0".to_vec());
        db.commit(setup).unwrap();

        // T1 reads; T2 updates and commits; T1's commit must fail.
        let mut t1 = db.begin();
        let _ = db.get(&mut t1, t, b"k");
        db.update(&mut t1, t, b"k".to_vec(), b"from-t1".to_vec());

        let mut t2 = db.begin();
        let _ = db.get(&mut t2, t, b"k");
        db.update(&mut t2, t, b"k".to_vec(), b"from-t2".to_vec());
        db.commit(t2).unwrap();

        let err = db.commit(t1).unwrap_err();
        assert!(matches!(err, TxnError::Conflict { .. }));
        assert_eq!(db.peek(t, b"k").unwrap(), b"from-t2");
        assert_eq!(db.aborts(), 1);
    }

    #[test]
    fn duplicate_insert_rejected_atomically() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        db.insert(&mut setup, t, b"k".to_vec(), b"v".to_vec());
        db.commit(setup).unwrap();

        let mut bad = db.begin();
        db.insert(&mut bad, t, b"fresh".to_vec(), b"x".to_vec());
        db.insert(&mut bad, t, b"k".to_vec(), b"dup".to_vec());
        assert!(matches!(db.commit(bad), Err(TxnError::DuplicateKey(_))));
        // Atomicity: the fresh insert must not have been applied.
        assert!(db.peek(t, b"fresh").is_none());
    }

    #[test]
    fn update_of_missing_key_rejected() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.update(&mut ctx, t, b"ghost".to_vec(), b"v".to_vec());
        assert!(matches!(db.commit(ctx), Err(TxnError::NotFound(_))));
    }

    #[test]
    fn update_of_own_insert_allowed() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k".to_vec(), b"v0".to_vec());
        db.update(&mut ctx, t, b"k".to_vec(), b"v1".to_vec());
        db.commit(ctx).unwrap();
        assert_eq!(db.peek(t, b"k").unwrap(), b"v1");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        for i in [5u32, 1, 3, 2, 4] {
            db.insert(&mut setup, t, keys::composite(&[i]), vec![i as u8]);
        }
        db.commit(setup).unwrap();
        let mut ctx = db.begin();
        let rows = db.scan(&mut ctx, t, &keys::composite(&[2]), &keys::composite(&[5]), 10);
        let got: Vec<u8> = rows.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(got, vec![2, 3, 4]);
        let limited = db.scan(&mut ctx, t, &keys::composite(&[0]), &keys::composite(&[99]), 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn last_in_range_finds_latest() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        for o in 1..=7u32 {
            db.insert(&mut setup, t, keys::composite(&[1, o]), vec![o as u8]);
        }
        db.insert(&mut setup, t, keys::composite(&[2, 1]), vec![0xFF]);
        db.commit(setup).unwrap();
        let mut ctx = db.begin();
        let from = keys::composite(&[1]);
        let to = keys::successor(&from);
        let (_, row) = db.last_in_range(&mut ctx, t, &from, &to).unwrap();
        assert_eq!(row, vec![7]);
    }

    #[test]
    fn key_successor_properties() {
        assert_eq!(keys::successor(&[1, 2, 3]), vec![1, 2, 4]);
        assert_eq!(keys::successor(&[1, 0xFF]), vec![2]);
        assert_eq!(keys::successor(&[0xFF, 0xFF]), vec![0xFF, 0xFF, 0]);
        // successor(p) > any key prefixed by p
        let p = vec![9u8, 9];
        let mut extended = p.clone();
        extended.extend_from_slice(&[0xFF; 8]);
        assert!(keys::successor(&p) > extended);
    }

    #[test]
    fn apply_record_replays_committed_state() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"a".to_vec(), b"1".to_vec());
        db.insert(&mut ctx, t, b"b".to_vec(), b"2".to_vec());
        let recs = db.commit(ctx).unwrap();
        let mut ctx2 = db.begin();
        db.delete(&mut ctx2, t, b"a".to_vec());
        let recs2 = db.commit(ctx2).unwrap();

        let mut replica = Database::new();
        replica.create_table("t");
        for r in recs.iter().chain(recs2.iter()) {
            replica.apply_record(r);
        }
        assert_eq!(replica.fingerprint(), db.fingerprint());
        assert!(replica.peek(t, b"a").is_none());
        assert_eq!(replica.peek(t, b"b").unwrap(), b"2");
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let (mut db1, t) = db_with_table();
        let mut db2 = Database::new();
        db2.create_table("t");
        assert_eq!(db1.fingerprint(), db2.fingerprint());
        let mut ctx = db1.begin();
        db1.insert(&mut ctx, t, b"x".to_vec(), b"y".to_vec());
        db1.commit(ctx).unwrap();
        assert_ne!(db1.fingerprint(), db2.fingerprint());
    }
}
