//! The main-memory storage engine.
//!
//! An ERMIA-class main-memory database keeps all data in DRAM and persists
//! only the transaction log (paper §1); the storage engine is therefore
//! ordered in-memory tables plus a transaction layer producing WAL records.
//! Tables are `BTreeMap`s over order-preserving encoded keys, so TPC-C's
//! range lookups (customer-by-last-name, latest order, oldest new-order)
//! are native scans.
//!
//! The steady-state transaction loop is allocation-free on the read side:
//! reads return borrowed `&[u8]` slices, range lookups go through visitor
//! APIs ([`Database::scan_visit`]), keys live inline in [`SmallKey`]s, the
//! read validation set records `(offset, len)` spans into a per-[`TxnCtx`]
//! bump arena, and finished contexts are recycled through a pool so their
//! buffers are reused across transactions. Row images are refcounted
//! [`simkit::Bytes`], shared between the stored table image and the
//! emitted [`LogRecord`]s.

use crate::key::SmallKey;
use crate::log::{LogOp, LogRecord, TableId};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A row image (refcounted; cloning shares the allocation).
pub type Row = simkit::Bytes;
/// An encoded, order-preserving key (inline up to 24 bytes).
pub type Key = SmallKey;

#[derive(Debug, Clone)]
struct Versioned {
    row: Row,
    version: u64,
}

/// One table: ordered rows + a version per row for validation.
#[derive(Debug, Default)]
pub struct Table {
    rows: BTreeMap<Key, Versioned>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Why a transaction failed to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A row read by the transaction changed before commit.
    Conflict {
        /// Table of the conflicting read.
        table: TableId,
        /// Key of the conflicting read.
        key: Key,
    },
    /// Insert of a key that already exists.
    DuplicateKey(Key),
    /// Update/delete of a missing key.
    NotFound(Key),
    /// Unknown table id.
    NoSuchTable(TableId),
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Conflict { table, key } => {
                write!(f, "validation conflict on table {table}, key {key:02X?}")
            }
            TxnError::DuplicateKey(k) => write!(f, "duplicate key {k:02X?}"),
            TxnError::NotFound(k) => write!(f, "key not found {k:02X?}"),
            TxnError::NoSuchTable(t) => write!(f, "no such table {t}"),
        }
    }
}

impl std::error::Error for TxnError {}

#[derive(Debug, Clone)]
enum PendingWrite {
    Insert(Key, Row),
    Update(Key, Row),
    Delete(Key),
}

/// One validation-set entry: the read key lives as a span in the
/// context's bump arena, not its own allocation.
#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    table: TableId,
    start: u32,
    len: u16,
    version: Option<u64>,
}

/// An open transaction: buffered writes + read validation set.
///
/// Read keys are appended to an internal bump arena; the context itself is
/// recycled through the database's pool on commit, so a steady-state
/// transaction reuses the previous one's buffers instead of allocating.
#[derive(Debug, Default)]
pub struct TxnCtx {
    id: u64,
    reads: Vec<ReadEntry>,
    writes: Vec<(TableId, PendingWrite)>,
    arena: Vec<u8>,
}

impl TxnCtx {
    /// Transaction id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Buffered write count.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Validation-set entry count.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    fn record_read(&mut self, table: TableId, key: &[u8], version: Option<u64>) {
        debug_assert!(key.len() <= u16::MAX as usize);
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        self.reads.push(ReadEntry { table, start, len: key.len() as u16, version });
    }

    fn read_key(&self, e: &ReadEntry) -> &[u8] {
        &self.arena[e.start as usize..e.start as usize + e.len as usize]
    }

    fn reset(&mut self, id: u64) {
        self.id = id;
        self.reads.clear();
        self.writes.clear();
        self.arena.clear();
    }
}

/// Recycled contexts kept per database (bounds pool memory under bursty
/// worker counts).
const CTX_POOL_CAP: usize = 64;

/// The database: a catalog of tables and the transaction layer.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    names: Vec<String>,
    next_txn: u64,
    commits: u64,
    aborts: u64,
    ctx_pool: Vec<TxnCtx>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table; returns its id.
    pub fn create_table(&mut self, name: &str) -> TableId {
        assert!(self.tables.len() < u16::MAX as usize);
        self.tables.push(Table::default());
        self.names.push(name.to_string());
        (self.tables.len() - 1) as TableId
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.names.iter().position(|n| n == name).map(|i| i as TableId)
    }

    /// Borrow a table.
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(id as usize)
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Aborted transactions so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Begin a transaction (reusing a pooled context when available).
    pub fn begin(&mut self) -> TxnCtx {
        let id = self.next_txn;
        self.next_txn += 1;
        let mut ctx = self.ctx_pool.pop().unwrap_or_default();
        ctx.reset(id);
        ctx
    }

    /// Return a context's buffers to the pool without committing (explicit
    /// application-level rollback; does not count as an abort).
    pub fn rollback(&mut self, mut ctx: TxnCtx) {
        if self.ctx_pool.len() < CTX_POOL_CAP {
            ctx.reset(0);
            self.ctx_pool.push(ctx);
        }
    }

    /// Transactional point read. Records the observed version for commit
    /// validation. Sees the transaction's own buffered writes. The
    /// returned slice borrows the stored row image — decode what you need
    /// before the next operation on `ctx`.
    pub fn get<'a>(&'a self, ctx: &'a mut TxnCtx, table: TableId, key: &[u8]) -> Option<&'a [u8]> {
        // Own writes first (read-your-writes). Resolve to an index first so
        // the borrow returned below starts inside its own arm (NLL).
        let mut own: Option<Option<usize>> = None;
        for (i, (t, w)) in ctx.writes.iter().enumerate().rev() {
            if *t != table {
                continue;
            }
            match w {
                PendingWrite::Insert(k, _) | PendingWrite::Update(k, _) if *k == *key => {
                    own = Some(Some(i));
                    break;
                }
                PendingWrite::Delete(k) if *k == *key => {
                    own = Some(None);
                    break;
                }
                _ => {}
            }
        }
        match own {
            Some(Some(i)) => match &ctx.writes[i].1 {
                PendingWrite::Insert(_, v) | PendingWrite::Update(_, v) => {
                    return Some(v.as_slice())
                }
                PendingWrite::Delete(_) => unreachable!("index resolved to a buffered image"),
            },
            Some(None) => return None,
            None => {}
        }
        let slot = self.tables.get(table as usize)?.rows.get(key);
        ctx.record_read(table, key, slot.map(|s| s.version));
        slot.map(|s| s.row.as_slice())
    }

    /// Transactional range scan over `[from, to)`, visiting up to `limit`
    /// `(key, row)` pairs in key order without cloning either. (Scans
    /// validate at item granularity, not phantom-proof — adequate for the
    /// workload model.) Returns the number of rows visited.
    pub fn scan_visit<F>(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
        limit: usize,
        mut visit: F,
    ) -> usize
    where
        F: FnMut(&[u8], &[u8]),
    {
        let Some(t) = self.tables.get(table as usize) else { return 0 };
        let mut n = 0;
        for (k, v) in t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))) {
            if n >= limit {
                break;
            }
            ctx.record_read(table, k.as_slice(), Some(v.version));
            visit(k.as_slice(), v.row.as_slice());
            n += 1;
        }
        n
    }

    /// Allocating convenience form of [`scan_visit`](Database::scan_visit)
    /// for tests and cold paths: collects up to `limit` cloned pairs.
    pub fn scan(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
        limit: usize,
    ) -> Vec<(Key, Row)> {
        let Some(t) = self.tables.get(table as usize) else { return Vec::new() };
        let mut out = Vec::new();
        for (k, v) in t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))) {
            if out.len() >= limit {
                break;
            }
            ctx.record_read(table, k.as_slice(), Some(v.version));
            out.push((k.clone(), v.row.clone()));
        }
        out
    }

    /// First `(key, row)` in `[from, to)` (e.g. the oldest new-order),
    /// borrowed.
    pub fn first_in_range<'a>(
        &'a self,
        ctx: &'a mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
    ) -> Option<(&'a [u8], &'a [u8])> {
        let t = self.tables.get(table as usize)?;
        let (k, v) =
            t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))).next()?;
        ctx.record_read(table, k.as_slice(), Some(v.version));
        Some((k.as_slice(), v.row.as_slice()))
    }

    /// Last `(key, row)` in `[from, to)` (e.g. a customer's latest order),
    /// borrowed.
    pub fn last_in_range<'a>(
        &'a self,
        ctx: &'a mut TxnCtx,
        table: TableId,
        from: &[u8],
        to: &[u8],
    ) -> Option<(&'a [u8], &'a [u8])> {
        let t = self.tables.get(table as usize)?;
        let (k, v) =
            t.rows.range::<[u8], _>((Bound::Included(from), Bound::Excluded(to))).next_back()?;
        ctx.record_read(table, k.as_slice(), Some(v.version));
        Some((k.as_slice(), v.row.as_slice()))
    }

    /// Buffer an insert.
    pub fn insert(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        key: impl Into<Key>,
        row: impl Into<Row>,
    ) {
        ctx.writes.push((table, PendingWrite::Insert(key.into(), row.into())));
    }

    /// Buffer an update.
    pub fn update(
        &self,
        ctx: &mut TxnCtx,
        table: TableId,
        key: impl Into<Key>,
        row: impl Into<Row>,
    ) {
        ctx.writes.push((table, PendingWrite::Update(key.into(), row.into())));
    }

    /// Buffer a delete.
    pub fn delete(&self, ctx: &mut TxnCtx, table: TableId, key: impl Into<Key>) {
        ctx.writes.push((table, PendingWrite::Delete(key.into())));
    }

    /// Validate and apply the transaction. On success the buffered writes
    /// are installed atomically and the WAL records (ending with a commit
    /// marker) are returned for the log manager to persist. Row images in
    /// the records share their allocation with the installed table rows.
    pub fn commit(&mut self, mut ctx: TxnCtx) -> Result<Vec<LogRecord>, TxnError> {
        let result = self.commit_inner(&mut ctx);
        if self.ctx_pool.len() < CTX_POOL_CAP {
            ctx.reset(0);
            self.ctx_pool.push(ctx);
        }
        result
    }

    fn commit_inner(&mut self, ctx: &mut TxnCtx) -> Result<Vec<LogRecord>, TxnError> {
        // Validation: every read version unchanged.
        for e in &ctx.reads {
            let t = self.tables.get(e.table as usize).ok_or(TxnError::NoSuchTable(e.table))?;
            let key = ctx.read_key(e);
            let current = t.rows.get(key).map(|s| s.version);
            if current != e.version {
                self.aborts += 1;
                return Err(TxnError::Conflict { table: e.table, key: Key::from_slice(key) });
            }
        }
        // Pre-check writes for structural errors (atomicity: reject before
        // applying anything).
        for (table, w) in &ctx.writes {
            let t = self.tables.get(*table as usize).ok_or(TxnError::NoSuchTable(*table))?;
            match w {
                PendingWrite::Insert(k, _) => {
                    if t.rows.contains_key(k) {
                        self.aborts += 1;
                        return Err(TxnError::DuplicateKey(k.clone()));
                    }
                }
                PendingWrite::Update(k, _) | PendingWrite::Delete(k) => {
                    if !t.rows.contains_key(k) {
                        // Updating a row this txn itself inserts is legal.
                        let own_insert = ctx.writes.iter().any(|(t2, w2)| {
                            *t2 == *table && matches!(w2, PendingWrite::Insert(k2, _) if k2 == k)
                        });
                        if !own_insert {
                            self.aborts += 1;
                            return Err(TxnError::NotFound(k.clone()));
                        }
                    }
                }
            }
        }
        // Apply + emit log records. Inserted/updated images are installed
        // and logged as the same refcounted buffer.
        let mut records = Vec::with_capacity(ctx.writes.len() + 1);
        let txn_id = ctx.id;
        for (table, w) in ctx.writes.drain(..) {
            let t = &mut self.tables[table as usize];
            match w {
                PendingWrite::Insert(k, v) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Insert,
                        table,
                        key: k.clone(),
                        value: v.clone(),
                    });
                    t.rows.insert(k, Versioned { row: v, version: txn_id });
                }
                PendingWrite::Update(k, v) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Update,
                        table,
                        key: k.clone(),
                        value: v.clone(),
                    });
                    t.rows.insert(k, Versioned { row: v, version: txn_id });
                }
                PendingWrite::Delete(k) => {
                    records.push(LogRecord {
                        txn_id,
                        op: LogOp::Delete,
                        table,
                        key: k.clone(),
                        value: Row::new(),
                    });
                    t.rows.remove(&k);
                }
            }
        }
        records.push(LogRecord::commit(txn_id));
        self.commits += 1;
        Ok(records)
    }

    /// Apply one *committed* log record directly (recovery / replica redo).
    /// Record application is idempotent for inserts/updates; the record's
    /// row image is installed by refcount bump, not copied.
    pub fn apply_record(&mut self, rec: &LogRecord) {
        match rec.op {
            LogOp::Commit => {}
            LogOp::Insert | LogOp::Update => {
                let table = rec.table as usize;
                while self.tables.len() <= table {
                    self.create_table(&format!("recovered_{}", self.tables.len()));
                }
                self.tables[table].rows.insert(
                    rec.key.clone(),
                    Versioned { row: rec.value.clone(), version: rec.txn_id },
                );
            }
            LogOp::Delete => {
                if let Some(t) = self.tables.get_mut(rec.table as usize) {
                    t.rows.remove(rec.key.as_slice());
                }
            }
        }
    }

    /// Raw (non-transactional) read, e.g. for verification.
    pub fn peek(&self, table: TableId, key: &[u8]) -> Option<&[u8]> {
        self.tables.get(table as usize)?.rows.get(key).map(|v| v.row.as_slice())
    }

    /// The catalog's table names in id order (checkpoint encoding).
    pub fn table_names(&self) -> &[String] {
        &self.names
    }

    /// Visit every `(key, row)` of a table in key order without cloning
    /// (checkpointing, verification).
    pub fn for_each_row<F>(&self, table: TableId, mut visit: F)
    where
        F: FnMut(&[u8], &[u8]),
    {
        if let Some(t) = self.tables.get(table as usize) {
            for (k, v) in &t.rows {
                visit(k.as_slice(), v.row.as_slice());
            }
        }
    }

    /// Install a row directly (checkpoint restore); bypasses transactions.
    pub fn install_row(&mut self, table: TableId, key: impl Into<Key>, row: impl Into<Row>) {
        let t = self.tables.get_mut(table as usize).expect("install_row into missing table");
        t.rows.insert(key.into(), Versioned { row: row.into(), version: 0 });
    }

    /// A stable fingerprint of all content (tables, keys, rows) for
    /// primary/replica equivalence checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |data: &[u8]| {
            for b in data {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (i, t) in self.tables.iter().enumerate() {
            mix(&(i as u32).to_le_bytes());
            for (k, v) in &t.rows {
                mix(k);
                mix(&v.row);
            }
        }
        h
    }
}

/// Order-preserving key encoding helpers (big-endian fixed-width fields).
pub mod keys {
    use super::Key;

    /// Append a `u32` big-endian component.
    pub fn push_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a `u64` big-endian component.
    pub fn push_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a fixed-width, zero-padded string component.
    pub fn push_str(out: &mut Vec<u8>, s: &str, width: usize) {
        let bytes = s.as_bytes();
        let take = bytes.len().min(width);
        out.extend_from_slice(&bytes[..take]);
        out.extend(std::iter::repeat_n(0u8, width - take));
    }

    /// Compose a key from `u32` components (stack-built, no allocation for
    /// up to six components).
    pub fn composite(parts: &[u32]) -> Key {
        let mut out = Key::new();
        for p in parts {
            out.push_u32(*p);
        }
        out
    }

    /// The smallest key strictly greater than every key with prefix `p`
    /// (for range scans: `[p, successor(p))`).
    pub fn successor(p: &[u8]) -> Key {
        for i in (0..p.len()).rev() {
            if p[i] != 0xFF {
                let mut out = Key::from_slice(&p[..=i]);
                out.as_mut_slice()[i] += 1;
                return out;
            }
        }
        let mut out = Key::from_slice(p);
        out.push_bytes(&[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table("t");
        (db, t)
    }

    #[test]
    fn insert_commit_read_back() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k1".to_vec(), b"v1".to_vec());
        let recs = db.commit(ctx).unwrap();
        assert_eq!(recs.len(), 2, "insert + commit marker");
        assert_eq!(recs.last().unwrap().op, LogOp::Commit);
        let mut ctx2 = db.begin();
        assert_eq!(db.get(&mut ctx2, t, b"k1"), Some(&b"v1"[..]));
        assert_eq!(db.commits(), 1);
    }

    #[test]
    fn read_your_own_writes() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k".to_vec(), b"v0".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), Some(&b"v0"[..]));
        db.update(&mut ctx, t, b"k".to_vec(), b"v1".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), Some(&b"v1"[..]));
        db.delete(&mut ctx, t, b"k".to_vec());
        assert_eq!(db.get(&mut ctx, t, b"k"), None);
    }

    #[test]
    fn conflict_detected_on_changed_read() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        db.insert(&mut setup, t, b"k".to_vec(), b"v0".to_vec());
        db.commit(setup).unwrap();

        // T1 reads; T2 updates and commits; T1's commit must fail.
        let mut t1 = db.begin();
        let _ = db.get(&mut t1, t, b"k");
        db.update(&mut t1, t, b"k".to_vec(), b"from-t1".to_vec());

        let mut t2 = db.begin();
        let _ = db.get(&mut t2, t, b"k");
        db.update(&mut t2, t, b"k".to_vec(), b"from-t2".to_vec());
        db.commit(t2).unwrap();

        let err = db.commit(t1).unwrap_err();
        assert!(matches!(err, TxnError::Conflict { .. }));
        assert_eq!(db.peek(t, b"k").unwrap(), b"from-t2");
        assert_eq!(db.aborts(), 1);
    }

    #[test]
    fn duplicate_insert_rejected_atomically() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        db.insert(&mut setup, t, b"k".to_vec(), b"v".to_vec());
        db.commit(setup).unwrap();

        let mut bad = db.begin();
        db.insert(&mut bad, t, b"fresh".to_vec(), b"x".to_vec());
        db.insert(&mut bad, t, b"k".to_vec(), b"dup".to_vec());
        assert!(matches!(db.commit(bad), Err(TxnError::DuplicateKey(_))));
        // Atomicity: the fresh insert must not have been applied.
        assert!(db.peek(t, b"fresh").is_none());
    }

    #[test]
    fn update_of_missing_key_rejected() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.update(&mut ctx, t, b"ghost".to_vec(), b"v".to_vec());
        assert!(matches!(db.commit(ctx), Err(TxnError::NotFound(_))));
    }

    #[test]
    fn update_of_own_insert_allowed() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k".to_vec(), b"v0".to_vec());
        db.update(&mut ctx, t, b"k".to_vec(), b"v1".to_vec());
        db.commit(ctx).unwrap();
        assert_eq!(db.peek(t, b"k").unwrap(), b"v1");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        for i in [5u32, 1, 3, 2, 4] {
            db.insert(&mut setup, t, keys::composite(&[i]), vec![i as u8]);
        }
        db.commit(setup).unwrap();
        let mut ctx = db.begin();
        let rows = db.scan(&mut ctx, t, &keys::composite(&[2]), &keys::composite(&[5]), 10);
        let got: Vec<u8> = rows.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(got, vec![2, 3, 4]);
        let limited = db.scan(&mut ctx, t, &keys::composite(&[0]), &keys::composite(&[99]), 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn scan_visit_matches_scan() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        for i in 0..10u32 {
            db.insert(&mut setup, t, keys::composite(&[i]), vec![i as u8; 4]);
        }
        db.commit(setup).unwrap();
        let mut c1 = db.begin();
        let cloned = db.scan(&mut c1, t, &keys::composite(&[2]), &keys::composite(&[8]), 4);
        let mut c2 = db.begin();
        let mut visited = Vec::new();
        let n =
            db.scan_visit(&mut c2, t, &keys::composite(&[2]), &keys::composite(&[8]), 4, |k, v| {
                visited.push((k.to_vec(), v.to_vec()))
            });
        assert_eq!(n, cloned.len());
        assert_eq!(c1.read_count(), c2.read_count());
        for ((k1, v1), (k2, v2)) in cloned.iter().zip(&visited) {
            assert_eq!(k1.as_slice(), k2.as_slice());
            assert_eq!(v1.as_slice(), v2.as_slice());
        }
    }

    #[test]
    fn first_and_last_in_range() {
        let (mut db, t) = db_with_table();
        let mut setup = db.begin();
        for o in 1..=7u32 {
            db.insert(&mut setup, t, keys::composite(&[1, o]), vec![o as u8]);
        }
        db.insert(&mut setup, t, keys::composite(&[2, 1]), vec![0xFF]);
        db.commit(setup).unwrap();
        let mut ctx = db.begin();
        let from = keys::composite(&[1]);
        let to = keys::successor(&from);
        let (_, row) = db.last_in_range(&mut ctx, t, &from, &to).unwrap();
        assert_eq!(row, [7u8].as_slice());
        let (_, first) = db.first_in_range(&mut ctx, t, &from, &to).unwrap();
        assert_eq!(first, [1u8].as_slice());
    }

    #[test]
    fn key_successor_properties() {
        assert_eq!(keys::successor(&[1, 2, 3]), vec![1, 2, 4]);
        assert_eq!(keys::successor(&[1, 0xFF]), vec![2]);
        assert_eq!(keys::successor(&[0xFF, 0xFF]), vec![0xFF, 0xFF, 0]);
        // successor(p) > any key prefixed by p
        let p = vec![9u8, 9];
        let mut extended = p.clone();
        extended.extend_from_slice(&[0xFF; 8]);
        assert!(keys::successor(&p) > extended);
    }

    #[test]
    fn apply_record_replays_committed_state() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"a".to_vec(), b"1".to_vec());
        db.insert(&mut ctx, t, b"b".to_vec(), b"2".to_vec());
        let recs = db.commit(ctx).unwrap();
        let mut ctx2 = db.begin();
        db.delete(&mut ctx2, t, b"a".to_vec());
        let recs2 = db.commit(ctx2).unwrap();

        let mut replica = Database::new();
        replica.create_table("t");
        for r in recs.iter().chain(recs2.iter()) {
            replica.apply_record(r);
        }
        assert_eq!(replica.fingerprint(), db.fingerprint());
        assert!(replica.peek(t, b"a").is_none());
        assert_eq!(replica.peek(t, b"b").unwrap(), b"2");
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let (mut db1, t) = db_with_table();
        let mut db2 = Database::new();
        db2.create_table("t");
        assert_eq!(db1.fingerprint(), db2.fingerprint());
        let mut ctx = db1.begin();
        db1.insert(&mut ctx, t, b"x".to_vec(), b"y".to_vec());
        db1.commit(ctx).unwrap();
        assert_ne!(db1.fingerprint(), db2.fingerprint());
    }

    #[test]
    fn contexts_are_recycled() {
        let (mut db, t) = db_with_table();
        for i in 0..5u32 {
            let mut ctx = db.begin();
            db.insert(&mut ctx, t, keys::composite(&[i]), vec![1u8]);
            db.commit(ctx).unwrap();
        }
        // A recycled context must start clean.
        let ctx = db.begin();
        assert_eq!(ctx.read_count(), 0);
        assert_eq!(ctx.write_count(), 0);
        assert_eq!(ctx.id(), 5);
    }

    #[test]
    fn shared_row_images_between_table_and_log() {
        let (mut db, t) = db_with_table();
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, b"k".to_vec(), vec![7u8; 64]);
        let recs = db.commit(ctx).unwrap();
        let logged = recs[0].value.as_slice().as_ptr();
        let stored = db.peek(t, b"k").unwrap().as_ptr();
        assert_eq!(logged, stored, "log record and table row share one buffer");
    }
}
