//! The multi-worker workload runner behind the Fig. 9 experiment.
//!
//! Workers are simulated cores pinned to log writers (the paper: "ERMIA
//! pins each of its log writers to a core, therefore the experiments can
//! scale to up to 8 threads"). Commits are pipelined: a transaction's
//! records join the open group-commit batch and its latency runs until the
//! batch's sync completes — which is why transaction latency *drops* as
//! workers increase (the 16 KiB threshold fills sooner, §6.1).

use crate::backend::LogBackend;
use crate::log::LogRecord;
use crate::storage::{Database, TxnError};
use crate::wal::{FlushReport, WalManager};
use simkit::{DetRng, SampleSeries, SimDuration, SimTime};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Number of worker threads (1–8 in the paper).
    pub workers: usize,
    /// Mean CPU time to execute one transaction (ERMIA-class engines do
    /// ~37 ktxn/s/core on TPC-C ⇒ ~27 µs/txn).
    pub cpu_per_txn: SimDuration,
    /// ±fractional jitter applied to per-transaction CPU time.
    pub cpu_jitter: f64,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Stall workers when the log writer's completion horizon runs this
    /// far ahead of the simulation clock (the log-buffer back-pressure: a
    /// full buffer parks workers until the device drains).
    pub max_log_deficit: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Maximum group commits the log writer may keep in flight at once.
    /// `1` (the default) is the serialized blocking path the paper's
    /// Fig. 9 measures; larger values pipeline groups through the
    /// backend's asynchronous append path.
    pub log_pipeline_depth: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 4,
            cpu_per_txn: SimDuration::from_micros_f64(27.0),
            cpu_jitter: 0.2,
            duration: SimDuration::from_millis(100),
            max_log_deficit: SimDuration::from_micros(500),
            seed: 0xE121A,
            log_pipeline_depth: 1,
        }
    }
}

/// What one run measured.
#[derive(Debug)]
pub struct RunReport {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (validation conflicts).
    pub aborted: u64,
    /// Simulated wall clock consumed.
    pub elapsed: SimDuration,
    /// Commit-to-durable latency samples, µs.
    pub latency_us: SampleSeries,
    /// Bytes pushed to the log backend.
    pub log_bytes: u64,
    /// Group flushes performed.
    pub flushes: u64,
    /// High-water mark of group commits simultaneously in flight (1 on
    /// the blocking path; can exceed 1 only with `log_pipeline_depth > 1`).
    pub max_log_inflight: u64,
}

impl RunReport {
    /// Committed transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean transaction latency in µs.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency_us.mean()
    }
}

impl simkit::Instrument for RunReport {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let mut db = out.scope("db");
        db.counter("commits", self.committed);
        db.counter("aborts", self.aborted);
        db.counter("log_bytes", self.log_bytes);
        db.counter("flushes", self.flushes);
        db.counter("elapsed_ns", self.elapsed.as_nanos());
        let mut hist = simkit::Histogram::new();
        for &s in self.latency_us.samples() {
            hist.record(s);
        }
        db.latency("commit_latency_us", &hist);
        // Emitted only when the pipelined path actually overlapped groups,
        // so blocking-path snapshots serialize exactly as before.
        if self.max_log_inflight > 1 {
            db.gauge("max_log_inflight", self.max_log_inflight as f64);
        }
    }
}

/// One transaction produced by the workload: its WAL records (already
/// applied to the database) or an abort.
pub type TxnOutcome = Result<Vec<LogRecord>, TxnError>;

/// Extra observation settings for [`run_observed`] — everything the
/// benchmark driver layer (`xssd-bench`'s `driver` module) needs beyond
/// the plain [`RunnerConfig`]: transaction kinds, a ramp-up window
/// excluded from statistics, and optional time-series bucketing.
#[derive(Debug, Clone, Copy)]
pub struct ObserveConfig {
    /// Number of distinct transaction kinds the workload closure may
    /// return; sizes [`ObservedRun::per_kind`].
    pub kinds: usize,
    /// Warm-up window at the start of the run: transactions *started*
    /// before this offset are executed (they heat caches and fill the
    /// log) but appear in no counter, latency series, or bucket — only
    /// in [`ObservedRun::ramp_excluded`].
    pub ramp_up: SimDuration,
    /// When set, committed transactions are additionally bucketed by
    /// durability instant into fixed windows of this width (offset from
    /// the end of the ramp) — the per-simulated-second time-series.
    pub series_bucket: Option<SimDuration>,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig { kinds: 1, ramp_up: SimDuration::ZERO, series_bucket: None }
    }
}

/// Measured-window statistics for one transaction kind.
#[derive(Debug, Default)]
pub struct KindCounts {
    /// Committed transactions of this kind (measured window only).
    pub committed: u64,
    /// Aborted transactions of this kind (measured window only).
    pub aborted: u64,
    /// Commit-to-durable latency samples of this kind, µs.
    pub latency_us: SampleSeries,
}

/// One time-series bucket (see [`ObserveConfig::series_bucket`]).
#[derive(Debug, Default)]
pub struct SeriesBucket {
    /// Transactions that became durable inside this bucket.
    pub committed: u64,
    /// Their commit-to-durable latency samples, µs.
    pub latency_us: SampleSeries,
}

/// What [`run_observed`] measured: the classic [`RunReport`] (counters
/// restricted to the measured window) plus the per-kind and time-series
/// breakdowns.
#[derive(Debug)]
pub struct ObservedRun {
    /// Aggregate report over the measured window. With a zero ramp this
    /// is byte-identical to what [`run_workload`] returns.
    pub report: RunReport,
    /// Per-kind breakdown, indexed by the kind the closure returned.
    pub per_kind: Vec<KindCounts>,
    /// Time-series buckets (empty unless `series_bucket` was set).
    pub series: Vec<SeriesBucket>,
    /// Committed transactions excluded because they started in the ramp.
    pub ramp_excluded: u64,
}

/// Drive `workers` simulated cores over `txn_fn` for the configured
/// duration. `txn_fn` executes exactly one transaction against `db` and
/// returns its log records.
pub fn run_workload<B, F>(
    db: &mut Database,
    wal: &mut WalManager<B>,
    cfg: RunnerConfig,
    mut txn_fn: F,
) -> RunReport
where
    B: LogBackend,
    F: FnMut(&mut Database, &mut DetRng, usize) -> TxnOutcome,
{
    run_observed(db, wal, cfg, ObserveConfig::default(), |db, rng, w, _t0| (0, txn_fn(db, rng, w)))
        .report
}

/// The kind-aware, ramp-aware generalization of [`run_workload`]. The
/// closure additionally receives the transaction's start instant and
/// returns `(kind, outcome)`; the execution schedule (worker timeline,
/// RNG stream, flush cadence) is *identical* to [`run_workload`] — the
/// observation settings only change what gets counted.
pub fn run_observed<B, F>(
    db: &mut Database,
    wal: &mut WalManager<B>,
    cfg: RunnerConfig,
    obs: ObserveConfig,
    txn_fn: F,
) -> ObservedRun
where
    B: LogBackend,
    F: FnMut(&mut Database, &mut DetRng, usize, SimTime) -> (usize, TxnOutcome),
{
    assert!(cfg.workers >= 1);
    assert!(cfg.log_pipeline_depth >= 1, "the log writer needs at least one slot");
    assert!(obs.kinds >= 1, "a workload has at least one transaction kind");
    assert!(obs.ramp_up <= cfg.duration, "ramp-up cannot exceed the run duration");
    if cfg.log_pipeline_depth == 1 {
        run_blocking(db, wal, cfg, obs, txn_fn)
    } else {
        run_pipelined(db, wal, cfg, obs, txn_fn)
    }
}

/// Measured-window accounting shared by both runner paths.
struct Observer {
    ramp_start: SimTime,
    bucket: Option<SimDuration>,
    latency: SampleSeries,
    per_kind: Vec<KindCounts>,
    series: Vec<SeriesBucket>,
    committed: u64,
    aborted: u64,
    ramp_excluded: u64,
}

impl Observer {
    fn new(obs: &ObserveConfig) -> Self {
        Observer {
            ramp_start: SimTime::ZERO + obs.ramp_up,
            bucket: obs.series_bucket,
            latency: SampleSeries::new(),
            per_kind: (0..obs.kinds).map(|_| KindCounts::default()).collect(),
            series: Vec::new(),
            committed: 0,
            aborted: 0,
            ramp_excluded: 0,
        }
    }

    fn on_commit(&mut self, start: SimTime, kind: usize) {
        if start >= self.ramp_start {
            self.committed += 1;
            self.per_kind[kind].committed += 1;
        } else {
            self.ramp_excluded += 1;
        }
    }

    fn on_abort(&mut self, start: SimTime, kind: usize) {
        if start >= self.ramp_start {
            self.aborted += 1;
            self.per_kind[kind].aborted += 1;
        }
    }

    fn on_durable(&mut self, start: SimTime, kind: usize, at: SimTime) {
        if start < self.ramp_start {
            return;
        }
        let us = at.saturating_since(start).as_micros_f64();
        self.latency.record(us);
        self.per_kind[kind].latency_us.record(us);
        if let Some(width) = self.bucket {
            let idx = (at.saturating_since(self.ramp_start).as_nanos() / width.as_nanos()) as usize;
            while self.series.len() <= idx {
                self.series.push(SeriesBucket::default());
            }
            self.series[idx].committed += 1;
            self.series[idx].latency_us.record(us);
        }
    }

    fn finish<B: LogBackend>(
        self,
        wal: &WalManager<B>,
        horizon: SimTime,
        max_log_inflight: u64,
    ) -> ObservedRun {
        ObservedRun {
            report: RunReport {
                committed: self.committed,
                aborted: self.aborted,
                elapsed: horizon.saturating_since(self.ramp_start),
                latency_us: self.latency,
                log_bytes: wal.backend().bytes_written(),
                flushes: wal.flushes(),
                max_log_inflight,
            },
            per_kind: self.per_kind,
            series: self.series,
            ramp_excluded: self.ramp_excluded,
        }
    }
}

/// Record latency samples for every waiting transaction a flush covered.
fn resolve(
    report: &FlushReport,
    waiting: &mut Vec<(SimTime, crate::wal::Lsn, usize)>,
    observer: &mut Observer,
) {
    waiting.retain(|(start, lsn, kind)| {
        if *lsn <= report.durable_upto {
            observer.on_durable(*start, *kind, report.at);
            false
        } else {
            true
        }
    });
}

/// The serialized path (`log_pipeline_depth == 1`): each group flush
/// blocks the log writer until durable — today's Fig. 9 pipeline.
fn run_blocking<B, F>(
    db: &mut Database,
    wal: &mut WalManager<B>,
    cfg: RunnerConfig,
    obs: ObserveConfig,
    mut txn_fn: F,
) -> ObservedRun
where
    B: LogBackend,
    F: FnMut(&mut Database, &mut DetRng, usize, SimTime) -> (usize, TxnOutcome),
{
    let mut rng = DetRng::new(cfg.seed);
    let mut worker_rngs: Vec<DetRng> = (0..cfg.workers).map(|i| rng.fork(i as u64)).collect();
    let mut available: Vec<SimTime> = vec![SimTime::ZERO; cfg.workers];
    // Transactions whose batch has not yet synced: (start, lsn, kind).
    let mut waiting: Vec<(SimTime, crate::wal::Lsn, usize)> = Vec::new();
    let mut observer = Observer::new(&obs);
    let end = SimTime::ZERO + cfg.duration;
    let mut last_flush_at = SimTime::ZERO;
    let mut horizon = SimTime::ZERO;

    loop {
        // Pick the earliest-free worker.
        let (w, &t0) =
            available.iter().enumerate().min_by_key(|(_, t)| **t).expect("at least one worker");
        if t0 >= end {
            break;
        }
        // Group-commit timeout: flush a stale batch before running on.
        if let Some(deadline) = wal.flush_deadline() {
            if deadline < t0 {
                let report = wal.flush(deadline);
                last_flush_at = report.at;
                horizon = horizon.max(report.at);
                resolve(&report, &mut waiting, &mut observer);
            }
        }
        // Execute one transaction.
        let jitter = 1.0 + cfg.cpu_jitter * (worker_rngs[w].unit() * 2.0 - 1.0);
        let cpu =
            SimDuration::from_nanos((cfg.cpu_per_txn.as_nanos() as f64 * jitter).round() as u64);
        let t1 = t0 + cpu;
        horizon = horizon.max(t1);
        let (kind, outcome) = txn_fn(db, &mut worker_rngs[w], w, t0);
        match outcome {
            Ok(records) => {
                observer.on_commit(t0, kind);
                let (lsn, maybe_flush) = wal.append_txn(t1, &records);
                waiting.push((t0, lsn, kind));
                available[w] = t1;
                if let Some(report) = maybe_flush {
                    // The dedicated log writer performs the flush; the
                    // filling worker moves straight on.
                    last_flush_at = report.at;
                    horizon = horizon.max(report.at);
                    resolve(&report, &mut waiting, &mut observer);
                }
                // Bounded run-ahead: when the log writer's completion
                // horizon runs too far ahead of the clock, the log buffer
                // is full — park this worker until the device drains.
                if wal.log_writer_free() > t1 + cfg.max_log_deficit {
                    available[w] = available[w].max(wal.log_writer_free());
                }
                let _ = last_flush_at;
            }
            Err(_) => {
                observer.on_abort(t0, kind);
                available[w] = t1;
            }
        }
    }

    // Drain the tail batch so every committed txn gets a latency sample.
    let report = wal.flush(horizon);
    horizon = horizon.max(report.at);
    resolve(&report, &mut waiting, &mut observer);
    debug_assert!(waiting.is_empty(), "all transactions must resolve");

    let max_log_inflight = wal.flushes().min(1);
    observer.finish(wal, horizon, max_log_inflight)
}

/// The pipelined path (`log_pipeline_depth > 1`): groups are handed to
/// the backend's asynchronous append path and up to `depth` of them ride
/// the device concurrently; durability arrives via completion polling.
fn run_pipelined<B, F>(
    db: &mut Database,
    wal: &mut WalManager<B>,
    cfg: RunnerConfig,
    obs: ObserveConfig,
    mut txn_fn: F,
) -> ObservedRun
where
    B: LogBackend,
    F: FnMut(&mut Database, &mut DetRng, usize, SimTime) -> (usize, TxnOutcome),
{
    let depth = cfg.log_pipeline_depth;
    let mut rng = DetRng::new(cfg.seed);
    let mut worker_rngs: Vec<DetRng> = (0..cfg.workers).map(|i| rng.fork(i as u64)).collect();
    let mut available: Vec<SimTime> = vec![SimTime::ZERO; cfg.workers];
    let mut waiting: Vec<(SimTime, crate::wal::Lsn, usize)> = Vec::new();
    let mut observer = Observer::new(&obs);
    let mut reports: Vec<FlushReport> = Vec::new();
    let mut max_inflight = 0usize;
    let end = SimTime::ZERO + cfg.duration;
    let mut horizon = SimTime::ZERO;

    loop {
        // Pick the earliest-free worker.
        let (w, &t0) =
            available.iter().enumerate().min_by_key(|(_, t)| **t).expect("at least one worker");
        if t0 >= end {
            break;
        }
        // Collect durability completions the device reached by t0.
        reports.clear();
        wal.poll_flushes(t0, &mut reports);
        for r in &reports {
            horizon = horizon.max(r.at);
            resolve(r, &mut waiting, &mut observer);
        }
        // Group-commit timeout: submit a stale batch (when a slot is
        // free; otherwise it goes out with the next submission window).
        if let Some(deadline) = wal.flush_deadline() {
            if deadline < t0 && wal.flushes_in_flight() < depth {
                wal.flush_submit(deadline);
                max_inflight = max_inflight.max(wal.flushes_in_flight());
            }
        }
        // Execute one transaction.
        let jitter = 1.0 + cfg.cpu_jitter * (worker_rngs[w].unit() * 2.0 - 1.0);
        let cpu =
            SimDuration::from_nanos((cfg.cpu_per_txn.as_nanos() as f64 * jitter).round() as u64);
        let t1 = t0 + cpu;
        horizon = horizon.max(t1);
        let (kind, outcome) = txn_fn(db, &mut worker_rngs[w], w, t0);
        match outcome {
            Ok(records) => {
                observer.on_commit(t0, kind);
                let lsn = wal.append_records(t1, &records);
                waiting.push((t0, lsn, kind));
                available[w] = t1;
                if wal.threshold_reached() {
                    if wal.flushes_in_flight() < depth {
                        wal.flush_submit(t1);
                        max_inflight = max_inflight.max(wal.flushes_in_flight());
                    } else {
                        // Every pipeline slot occupied: the log buffer is
                        // full. Park this worker until the earliest
                        // in-flight group can complete (nudge when the
                        // backend cannot bound it).
                        let next = wal
                            .next_flush_completion_at()
                            .unwrap_or(t1 + SimDuration::from_micros(1));
                        available[w] = available[w].max(next.max(t1));
                    }
                }
                // Bounded run-ahead on the hand-off path, as in the
                // blocking loop.
                if wal.log_writer_free() > t1 + cfg.max_log_deficit {
                    available[w] = available[w].max(wal.log_writer_free());
                }
            }
            Err(_) => {
                observer.on_abort(t0, kind);
                available[w] = t1;
            }
        }
    }

    // Drain the tail: submit the remainder and drive every in-flight
    // group durable so each committed txn gets a latency sample.
    wal.flush_submit(horizon);
    max_inflight = max_inflight.max(wal.flushes_in_flight());
    reports.clear();
    let t = wal.drain_all(horizon, &mut reports);
    horizon = horizon.max(t);
    for r in &reports {
        resolve(r, &mut waiting, &mut observer);
    }
    debug_assert!(waiting.is_empty(), "all transactions must resolve");

    observer.finish(wal, horizon, max_inflight as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NoLog, PmConfig, PmLog};
    use crate::wal::WalConfig;

    /// A trivial counter-bumping workload with ~200-byte log records.
    fn bump_workload(db: &mut Database, rng: &mut DetRng, _w: usize) -> TxnOutcome {
        let t = 0;
        let mut ctx = db.begin();
        let key = crate::storage::keys::composite(&[rng.uniform(0, 999) as u32]);
        let mut row =
            db.get(&mut ctx, t, &key).map(|r| r.to_vec()).unwrap_or_else(|| vec![0u8; 160]);
        row[0] = row[0].wrapping_add(1);
        if db.peek(t, &key).is_some() {
            db.update(&mut ctx, t, key, row);
        } else {
            db.insert(&mut ctx, t, key, row);
        }
        db.commit(ctx)
    }

    fn run(workers: usize, dur_ms: u64) -> RunReport {
        let mut db = Database::new();
        db.create_table("counters");
        let mut wal = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
        run_workload(
            &mut db,
            &mut wal,
            RunnerConfig {
                workers,
                duration: SimDuration::from_millis(dur_ms),
                ..RunnerConfig::default()
            },
            bump_workload,
        )
    }

    #[test]
    fn throughput_scales_with_workers() {
        let one = run(1, 50);
        let four = run(4, 50);
        assert!(one.committed > 100);
        let speedup = four.throughput_tps() / one.throughput_tps();
        assert!(speedup > 2.5, "4 workers only {speedup:.2}x over 1");
    }

    #[test]
    fn latency_drops_with_more_workers() {
        // The paper's Fig. 9 latency effect: more workers fill the 16 KiB
        // group sooner, so commit-to-durable latency falls.
        let one = run(1, 50);
        let eight = run(8, 50);
        assert!(
            eight.mean_latency_us() < one.mean_latency_us() * 0.6,
            "one={:.0}us eight={:.0}us",
            one.mean_latency_us(),
            eight.mean_latency_us()
        );
    }

    #[test]
    fn every_commit_gets_a_latency_sample() {
        let r = run(3, 20);
        assert_eq!(r.committed as usize, r.latency_us.len());
        assert!(r.flushes > 0);
        assert!(r.log_bytes > 0);
    }

    #[test]
    fn no_log_runs_are_cpu_bound() {
        let mut db = Database::new();
        db.create_table("counters");
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        let cfg = RunnerConfig {
            workers: 2,
            duration: SimDuration::from_millis(50),
            ..RunnerConfig::default()
        };
        let r = run_workload(&mut db, &mut wal, cfg, bump_workload);
        // 2 workers * 50ms / 27us ~ 3700 txns, modulo jitter.
        let expected = 2.0 * 0.05 / 27e-6;
        let ratio = r.committed as f64 / expected;
        assert!((0.85..1.15).contains(&ratio), "committed {} vs expected {expected}", r.committed);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(4, 20);
        let b = run(4, 20);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.latency_us.samples(), b.latency_us.samples());
    }

    fn run_pipelined_pm(depth: usize) -> RunReport {
        let mut db = Database::new();
        db.create_table("counters");
        // A long fence makes each group's durability lag its hand-off, so
        // groups genuinely overlap on the device.
        let pm = PmConfig { fence: SimDuration::from_micros(200), ..PmConfig::default() };
        let mut wal = WalManager::new(
            PmLog::new(pm),
            WalConfig { group_threshold: 2 << 10, ..WalConfig::default() },
        );
        let cfg = RunnerConfig {
            workers: 8,
            duration: SimDuration::from_millis(50),
            log_pipeline_depth: depth,
            ..RunnerConfig::default()
        };
        run_workload(&mut db, &mut wal, cfg, bump_workload)
    }

    #[test]
    fn pipelined_runner_sustains_multiple_inflight_groups() {
        let r = run_pipelined_pm(4);
        assert!(r.max_log_inflight >= 2, "only {} group(s) in flight", r.max_log_inflight);
        assert!(r.committed > 100);
        // Every committed transaction still resolves to a latency sample.
        assert_eq!(r.committed as usize, r.latency_us.len());
        // The high-water mark is visible in a collected snapshot.
        let mut reg = simkit::MetricsRegistry::new();
        reg.collect("", &r);
        assert!(reg.snapshot().gauge("db.max_log_inflight") >= 2.0);
    }

    #[test]
    fn pipelined_runner_is_deterministic() {
        let a = run_pipelined_pm(4);
        let b = run_pipelined_pm(4);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.latency_us.samples(), b.latency_us.samples());
    }

    #[test]
    fn blocking_report_never_claims_overlap() {
        let r = run(2, 20);
        assert_eq!(r.max_log_inflight, 1);
        // Depth 1 keeps the gauge out of collected snapshots (golden
        // serialization parity for the Fig. 9 runs).
        let mut reg = simkit::MetricsRegistry::new();
        reg.collect("", &r);
        assert!(reg.snapshot().get("db.max_log_inflight").is_none());
    }
}
