//! Inline, order-preserving keys.
//!
//! Every hot-path TPC-C/YCSB key is a short big-endian composite (4–16
//! bytes; the widest, the customer-name index entry, is 28). Storing them
//! as `Vec<u8>` costs a heap allocation per stored row and per lookup
//! probe. [`SmallKey`] keeps up to [`SmallKey::INLINE`] bytes inline and
//! spills to a boxed slice only beyond that, while comparing and hashing
//! exactly like the underlying byte slice — so `BTreeMap<SmallKey, _>`
//! keeps its order-preserving semantics and can still be probed with a
//! plain `&[u8]` via `Borrow<[u8]>`.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

#[derive(Clone)]
enum Repr {
    /// Up to `INLINE` bytes stored in place.
    Inline { len: u8, buf: [u8; SmallKey::INLINE] },
    /// Longer keys spill to the heap (load-time name-index entries only).
    Spill(Box<[u8]>),
}

/// An encoded, order-preserving key with inline small-key storage.
#[derive(Clone)]
pub struct SmallKey(Repr);

impl SmallKey {
    /// Bytes stored without a heap allocation.
    pub const INLINE: usize = 24;

    /// An empty key.
    pub fn new() -> Self {
        SmallKey(Repr::Inline { len: 0, buf: [0; Self::INLINE] })
    }

    /// A key holding a copy of `src`.
    pub fn from_slice(src: &[u8]) -> Self {
        if src.len() <= Self::INLINE {
            let mut buf = [0u8; Self::INLINE];
            buf[..src.len()].copy_from_slice(src);
            SmallKey(Repr::Inline { len: src.len() as u8, buf })
        } else {
            SmallKey(Repr::Spill(src.into()))
        }
    }

    /// Borrow the key bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(b) => b,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Spill(b) => b.len(),
        }
    }

    /// True when the key holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append raw bytes, spilling to the heap if the inline buffer fills.
    pub fn push_bytes(&mut self, src: &[u8]) {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                let l = *len as usize;
                if l + src.len() <= Self::INLINE {
                    buf[l..l + src.len()].copy_from_slice(src);
                    *len = (l + src.len()) as u8;
                } else {
                    let mut v = Vec::with_capacity(l + src.len());
                    v.extend_from_slice(&buf[..l]);
                    v.extend_from_slice(src);
                    self.0 = Repr::Spill(v.into_boxed_slice());
                }
            }
            Repr::Spill(b) => {
                let mut v = Vec::with_capacity(b.len() + src.len());
                v.extend_from_slice(b);
                v.extend_from_slice(src);
                self.0 = Repr::Spill(v.into_boxed_slice());
            }
        }
    }

    /// Append a `u32` big-endian component.
    pub fn push_u32(&mut self, v: u32) {
        self.push_bytes(&v.to_be_bytes());
    }

    /// Append a `u64` big-endian component.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_be_bytes());
    }

    /// Append a fixed-width, zero-padded string component.
    pub fn push_str(&mut self, s: &str, width: usize) {
        let bytes = s.as_bytes();
        let take = bytes.len().min(width);
        self.push_bytes(&bytes[..take]);
        for _ in take..width {
            self.push_bytes(&[0]);
        }
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spill(b) => b,
        }
    }
}

impl Default for SmallKey {
    fn default() -> Self {
        SmallKey::new()
    }
}

impl Deref for SmallKey {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SmallKey {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for SmallKey {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for SmallKey {
    fn from(v: &[u8]) -> Self {
        SmallKey::from_slice(v)
    }
}

impl From<Vec<u8>> for SmallKey {
    fn from(v: Vec<u8>) -> Self {
        SmallKey::from_slice(&v)
    }
}

impl From<&Vec<u8>> for SmallKey {
    fn from(v: &Vec<u8>) -> Self {
        SmallKey::from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for SmallKey {
    fn from(v: [u8; N]) -> Self {
        SmallKey::from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for SmallKey {
    fn from(v: &[u8; N]) -> Self {
        SmallKey::from_slice(v)
    }
}

// `Borrow<[u8]>` requires Eq/Ord/Hash to agree with the slice's, so all
// of them delegate to `as_slice()`.
impl PartialEq for SmallKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SmallKey {}

impl PartialOrd for SmallKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SmallKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for SmallKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for SmallKey {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for SmallKey {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SmallKey {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd<Vec<u8>> for SmallKey {
    fn partial_cmp(&self, other: &Vec<u8>) -> Option<Ordering> {
        Some(self.as_slice().cmp(other.as_slice()))
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SmallKey {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for SmallKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn inline_and_spill_round_trip() {
        for n in 0..=64usize {
            let src: Vec<u8> = (0..n as u8).collect();
            let k = SmallKey::from_slice(&src);
            assert_eq!(k.as_slice(), src.as_slice());
            assert_eq!(k.len(), n);
            assert_eq!(k.is_empty(), n == 0);
        }
    }

    #[test]
    fn ordering_matches_slices() {
        let samples: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            vec![1],
            vec![1, 2, 3],
            vec![0xFF; 24],
            vec![0xFF; 25],
            (0..30).collect(),
        ];
        for a in &samples {
            for b in &samples {
                let (ka, kb) = (SmallKey::from_slice(a), SmallKey::from_slice(b));
                assert_eq!(ka.cmp(&kb), a.as_slice().cmp(b.as_slice()), "{a:?} vs {b:?}");
                assert_eq!(ka == kb, a == b);
            }
        }
    }

    #[test]
    fn btreemap_probe_by_slice() {
        let mut m: BTreeMap<SmallKey, u32> = BTreeMap::new();
        m.insert(SmallKey::from_slice(b"abc"), 1);
        m.insert(SmallKey::from_slice(&[9u8; 30]), 2);
        assert_eq!(m.get(b"abc".as_slice()), Some(&1));
        assert_eq!(m.get([9u8; 30].as_slice()), Some(&2));
        assert_eq!(m.get(b"zzz".as_slice()), None);
    }

    #[test]
    fn push_crosses_inline_boundary() {
        let mut k = SmallKey::new();
        for i in 0..7u32 {
            k.push_u32(i);
        }
        assert_eq!(k.len(), 28);
        let expect: Vec<u8> = (0..7u32).flat_map(|i| i.to_be_bytes()).collect();
        assert_eq!(k.as_slice(), expect.as_slice());
    }

    #[test]
    fn push_str_pads_to_width() {
        let mut k = SmallKey::new();
        k.push_str("ab", 5);
        assert_eq!(k.as_slice(), &[b'a', b'b', 0, 0, 0]);
        let mut long = SmallKey::new();
        long.push_str("abcdef", 3);
        assert_eq!(long.as_slice(), b"abc");
    }
}
