//! Write-ahead-log records and their wire encoding.
//!
//! The encoding is self-framing (magic + lengths + checksum) so a recovery
//! scan over the destaged log stream can detect a torn tail — even though a
//! Villars device's crash semantics should never produce one (paper §4.1),
//! the database verifies rather than trusts.

use crate::key::SmallKey;
use simkit::Bytes;

/// Table identifier within the catalog.
pub type TableId = u16;

/// What a record does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// Insert a new row.
    Insert,
    /// Replace an existing row.
    Update,
    /// Remove a row.
    Delete,
    /// Transaction commit marker: everything for `txn_id` before this
    /// record is atomic.
    Commit,
}

impl LogOp {
    fn code(self) -> u8 {
        match self {
            LogOp::Insert => 1,
            LogOp::Update => 2,
            LogOp::Delete => 3,
            LogOp::Commit => 4,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            1 => Some(LogOp::Insert),
            2 => Some(LogOp::Update),
            3 => Some(LogOp::Delete),
            4 => Some(LogOp::Commit),
            _ => None,
        }
    }
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Owning transaction.
    pub txn_id: u64,
    /// Operation.
    pub op: LogOp,
    /// Target table (0 for commit markers).
    pub table: TableId,
    /// Row key (empty for commit markers; inline, no heap for ≤ 24 B).
    pub key: SmallKey,
    /// Row image (empty for deletes/commits; refcounted, shared with the
    /// stored table image).
    pub value: Bytes,
}

impl LogRecord {
    /// A commit marker for `txn_id`.
    pub fn commit(txn_id: u64) -> Self {
        LogRecord { txn_id, op: LogOp::Commit, table: 0, key: SmallKey::new(), value: Bytes::new() }
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.key.len() + self.value.len() + 4
    }

    /// Append the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(MAGIC);
        out.push(self.op.code());
        out.extend_from_slice(&self.txn_id.to_le_bytes());
        out.extend_from_slice(&self.table.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&self.value);
        let sum = fnv1a(&out[start..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }

    /// Encode to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }
}

const MAGIC: u8 = 0xD6;
/// magic + op + txn(8) + table(2) + klen(2) + vlen(4).
const HEADER_LEN: usize = 1 + 1 + 8 + 2 + 2 + 4;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for a full record (clean end of stream if at a
    /// record boundary, torn tail otherwise).
    Truncated,
    /// First byte is not the record magic (filler or corruption).
    BadMagic(u8),
    /// Unknown op code.
    BadOp(u8),
    /// Checksum mismatch (torn or corrupt record).
    BadChecksum,
}

/// Decode one record from the front of `buf`. Returns the record and the
/// bytes consumed.
pub fn decode_one(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    if buf[0] != MAGIC {
        return Err(DecodeError::BadMagic(buf[0]));
    }
    let op = LogOp::from_code(buf[1]).ok_or(DecodeError::BadOp(buf[1]))?;
    let txn_id = u64::from_le_bytes(buf[2..10].try_into().expect("8 bytes"));
    let table = u16::from_le_bytes(buf[10..12].try_into().expect("2 bytes"));
    let klen = u16::from_le_bytes(buf[12..14].try_into().expect("2 bytes")) as usize;
    let vlen = u32::from_le_bytes(buf[14..18].try_into().expect("4 bytes")) as usize;
    let total = HEADER_LEN + klen + vlen + 4;
    if buf.len() < total {
        return Err(DecodeError::Truncated);
    }
    let key = SmallKey::from_slice(&buf[HEADER_LEN..HEADER_LEN + klen]);
    let value = Bytes::copy_from_slice(&buf[HEADER_LEN + klen..HEADER_LEN + klen + vlen]);
    let stored = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    if fnv1a(&buf[..total - 4]) != stored {
        return Err(DecodeError::BadChecksum);
    }
    Ok((LogRecord { txn_id, op, table, key, value }, total))
}

/// Decode a whole stream; stops cleanly at the end or at the first
/// truncated/corrupt record (returning what was recovered and how many
/// bytes were consumed).
pub fn decode_stream(buf: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    while cursor < buf.len() {
        match decode_one(&buf[cursor..]) {
            Ok((rec, used)) => {
                out.push(rec);
                cursor += used;
            }
            Err(_) => break,
        }
    }
    (out, cursor)
}

/// FNV-1a over a byte slice (record checksums).
pub fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for b in data {
        hash ^= *b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            txn_id: 42,
            op: LogOp::Update,
            table: 3,
            key: vec![1, 2, 3].into(),
            value: vec![9; 100].into(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let rec = sample();
        let buf = rec.encode();
        assert_eq!(buf.len(), rec.encoded_len());
        let (dec, used) = decode_one(&buf).unwrap();
        assert_eq!(dec, rec);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn commit_marker_round_trip() {
        let rec = LogRecord::commit(77);
        let (dec, _) = decode_one(&rec.encode()).unwrap();
        assert_eq!(dec.op, LogOp::Commit);
        assert_eq!(dec.txn_id, 77);
    }

    #[test]
    fn stream_decoding_stops_at_filler() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        LogRecord::commit(42).encode_into(&mut buf);
        let records_end = buf.len();
        buf.extend_from_slice(&[0u8; 64]); // zero filler
        let (recs, used) = decode_stream(&buf);
        assert_eq!(recs.len(), 2);
        assert_eq!(used, records_end);
    }

    #[test]
    fn torn_tail_detected() {
        let buf = sample().encode();
        let torn = &buf[..buf.len() - 2];
        assert_eq!(decode_one(torn), Err(DecodeError::Truncated));
        let (recs, _) = decode_stream(torn);
        assert!(recs.is_empty());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sample().encode();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(matches!(decode_one(&buf), Err(DecodeError::BadChecksum)));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = sample().encode();
        buf[0] = 0x00;
        assert_eq!(decode_one(&buf), Err(DecodeError::BadMagic(0)));
    }

    #[test]
    fn bad_op_detected() {
        let mut buf = sample().encode();
        buf[1] = 99;
        assert_eq!(decode_one(&buf), Err(DecodeError::BadOp(99)));
    }

    #[test]
    fn random_round_trips() {
        // Seeded random codec round-trips (replayable by seed).
        for seed in 0..64u64 {
            let mut rng = simkit::DetRng::new(0x0106_0000 + seed);
            let key: Vec<u8> = (0..rng.uniform(0, 64)).map(|_| rng.uniform(0, 256) as u8).collect();
            let value: Vec<u8> =
                (0..rng.uniform(0, 512)).map(|_| rng.uniform(0, 256) as u8).collect();
            let rec = LogRecord {
                txn_id: rng.next_u64(),
                op: LogOp::Insert,
                table: rng.uniform(0, u16::MAX as u64 + 1) as u16,
                key: key.into(),
                value: value.into(),
            };
            let (dec, used) = decode_one(&rec.encode()).unwrap();
            assert_eq!(dec, rec, "seed {seed}");
            assert_eq!(used, rec.encoded_len(), "seed {seed}");
        }
    }

    #[test]
    fn random_stream_concatenation() {
        for seed in 0..32u64 {
            let mut rng = simkit::DetRng::new(0x0057_2EA0 + seed);
            let n = rng.uniform(1, 20) as usize;
            let base = rng.next_u64();
            let mut buf = Vec::new();
            let mut expect = Vec::new();
            for i in 0..n {
                let rec = LogRecord {
                    txn_id: base.wrapping_add(i as u64),
                    op: if i % 2 == 0 { LogOp::Insert } else { LogOp::Update },
                    table: (i % 7) as u16,
                    key: vec![i as u8; i % 16].into(),
                    value: vec![(i * 3) as u8; (i * 13) % 200].into(),
                };
                rec.encode_into(&mut buf);
                expect.push(rec);
            }
            let (recs, used) = decode_stream(&buf);
            assert_eq!(recs, expect, "seed {seed}");
            assert_eq!(used, buf.len(), "seed {seed}");
        }
    }
}
