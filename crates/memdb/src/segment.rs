//! Segmented WAL lifecycle: sealed segments, archive retention, and
//! checkpoint-anchored truncation.
//!
//! The Starcounter retention model: the log is written as fixed-size
//! *segments* in the contiguous LSN byte space. The active segment seals
//! (a whole-segment CRC is stamped and the segment moves to the archive)
//! when the next record would not fit — records never span segments — and
//! a completed checkpoint advances the *truncation horizon*, retiring
//! every archived segment that ends at or below it. Recovery is therefore
//! always bounded: latest snapshot + the segments after its log offset,
//! never total history.
//!
//! Segmentation is host-side bookkeeping over the same byte stream the
//! backend persists — enabling it changes nothing about what is written
//! to the device, only what the host retains for replay and rejoin.

use crate::log::fnv1a;
use std::collections::VecDeque;

/// Segmented-log configuration.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Segment capacity in bytes. A record longer than this cannot be
    /// appended (the WAL panics rather than silently spanning segments).
    pub segment_bytes: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        // Small relative to real systems on purpose: simulated runs are
        // short, and rotation only exercises anything if it happens.
        SegmentConfig { segment_bytes: 64 << 10 }
    }
}

/// A sealed (immutable, archived) log segment.
#[derive(Debug, Clone)]
pub struct SealedSegment {
    /// Sequence number (0-based, monotonic across the log's lifetime).
    pub seq: u64,
    /// LSN of the segment's first byte.
    pub base_lsn: u64,
    /// The segment's record bytes (whole records only).
    pub bytes: Vec<u8>,
    /// FNV-1a over `bytes`, stamped at seal time.
    pub crc: u32,
}

impl SealedSegment {
    /// LSN one past the segment's last byte.
    pub fn end_lsn(&self) -> u64 {
        self.base_lsn + self.bytes.len() as u64
    }

    /// Whether the stored CRC matches the bytes.
    pub fn verify(&self) -> bool {
        fnv1a(&self.bytes) == self.crc
    }
}

/// A borrowed view of one segment for replay: archived segments carry
/// their seal CRC; the active tail does not (its durable prefix is
/// validated per-record instead).
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// LSN of the first byte.
    pub base_lsn: u64,
    /// The segment bytes.
    pub bytes: &'a [u8],
    /// Whole-segment CRC (sealed segments only).
    pub crc: Option<u32>,
}

/// The segmented log: an active segment plus the sealed archive.
#[derive(Debug, Default)]
pub struct SegmentedLog {
    config: SegmentConfig,
    /// Bytes of the active (unsealed) segment.
    active: Vec<u8>,
    /// LSN of the active segment's first byte.
    active_base: u64,
    /// Sealed segments not yet retired, oldest first.
    sealed: VecDeque<SealedSegment>,
    /// Next seal's sequence number.
    next_seq: u64,
    /// Truncation horizon: everything below is covered by a completed
    /// checkpoint and no longer needed for recovery.
    horizon: u64,
    seals: u64,
    retired_segments: u64,
    retired_bytes: u64,
}

impl SegmentedLog {
    /// An empty segmented log.
    pub fn new(config: SegmentConfig) -> Self {
        assert!(config.segment_bytes > 0, "segment_bytes must be positive");
        SegmentedLog { config, ..Default::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &SegmentConfig {
        &self.config
    }

    /// Append one encoded record. Seals the active segment first if the
    /// record would not fit (records never span segments), and seals
    /// again immediately if the record lands exactly on the boundary.
    ///
    /// Panics if a single record exceeds the segment capacity — the
    /// unbounded-growth hazard this subsystem exists to remove would
    /// otherwise silently re-open as cross-segment spill.
    pub fn append_record_bytes(&mut self, record: &[u8]) {
        let len = record.len() as u64;
        assert!(
            len <= self.config.segment_bytes,
            "record of {len} bytes exceeds the {}-byte segment capacity",
            self.config.segment_bytes
        );
        if self.active.len() as u64 + len > self.config.segment_bytes {
            self.seal();
        }
        self.active.extend_from_slice(record);
        if self.active.len() as u64 == self.config.segment_bytes {
            self.seal();
        }
    }

    /// Seal the active segment (no-op when empty): stamp its CRC and move
    /// it to the archive.
    pub fn seal(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let bytes = std::mem::take(&mut self.active);
        let crc = fnv1a(&bytes);
        let base_lsn = self.active_base;
        self.active_base += bytes.len() as u64;
        self.sealed.push_back(SealedSegment { seq: self.next_seq, base_lsn, bytes, crc });
        self.next_seq += 1;
        self.seals += 1;
    }

    /// Advance the truncation horizon to `horizon` (a completed
    /// checkpoint's log offset) and retire every sealed segment that ends
    /// at or below it. Returns how many segments were retired. A horizon
    /// behind the current one is a no-op (checkpoints only move forward).
    pub fn truncate_below(&mut self, horizon: u64) -> usize {
        if horizon <= self.horizon {
            return 0;
        }
        self.horizon = horizon;
        let mut retired = 0;
        while let Some(front) = self.sealed.front() {
            if front.end_lsn() > horizon {
                break;
            }
            let seg = self.sealed.pop_front().expect("front exists");
            self.retired_bytes += seg.bytes.len() as u64;
            self.retired_segments += 1;
            retired += 1;
        }
        retired
    }

    /// The truncation horizon.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// LSN of the oldest retained byte (archive start); everything below
    /// has been retired and can only be recovered via a snapshot.
    pub fn retained_from(&self) -> u64 {
        self.sealed.front().map_or(self.active_base, |s| s.base_lsn)
    }

    /// LSN one past the last appended byte.
    pub fn end_lsn(&self) -> u64 {
        self.active_base + self.active.len() as u64
    }

    /// Sealed segments currently retained, oldest first.
    pub fn sealed(&self) -> impl Iterator<Item = &SealedSegment> {
        self.sealed.iter()
    }

    /// Retained segment count (sealed + the active segment if non-empty).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.active.is_empty())
    }

    /// Bytes retained in the sealed archive.
    pub fn archived_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// Seals performed over the log's lifetime.
    pub fn seals(&self) -> u64 {
        self.seals
    }

    /// Segments retired by truncation over the log's lifetime.
    pub fn retired_segments(&self) -> u64 {
        self.retired_segments
    }

    /// Bytes retired by truncation over the log's lifetime.
    pub fn retired_bytes(&self) -> u64 {
        self.retired_bytes
    }

    /// Borrowed views of every retained segment in LSN order — the sealed
    /// archive (with CRCs) followed by the active tail (without). This is
    /// the replay input for [`crate::recovery::replay_segments`].
    pub fn views(&self) -> Vec<SegmentView<'_>> {
        let mut out: Vec<SegmentView<'_>> = self
            .sealed
            .iter()
            .map(|s| SegmentView { base_lsn: s.base_lsn, bytes: &s.bytes, crc: Some(s.crc) })
            .collect();
        if !self.active.is_empty() {
            out.push(SegmentView { base_lsn: self.active_base, bytes: &self.active, crc: None });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(seg: &mut SegmentedLog, n: usize) {
        seg.append_record_bytes(&vec![0xA5u8; n]);
    }

    #[test]
    fn seals_rotate_when_full() {
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 100 });
        push(&mut seg, 60);
        assert_eq!(seg.segment_count(), 1);
        // 60 + 60 > 100: seal early, never span.
        push(&mut seg, 60);
        assert_eq!(seg.seals(), 1);
        let first = seg.sealed().next().unwrap();
        assert_eq!(first.base_lsn, 0);
        assert_eq!(first.bytes.len(), 60);
        assert!(first.verify());
        assert_eq!(seg.end_lsn(), 120);
    }

    #[test]
    fn exact_boundary_seals_immediately() {
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 100 });
        push(&mut seg, 40);
        push(&mut seg, 60); // lands exactly on the boundary
        assert_eq!(seg.seals(), 1);
        assert_eq!(seg.sealed().next().unwrap().bytes.len(), 100);
        assert_eq!(seg.segment_count(), 1, "active is empty after an exact fill");
        push(&mut seg, 10);
        assert_eq!(seg.views().last().unwrap().base_lsn, 100);
    }

    #[test]
    #[should_panic(expected = "exceeds the 100-byte segment capacity")]
    fn oversized_record_panics_instead_of_spanning() {
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 100 });
        push(&mut seg, 101);
    }

    #[test]
    fn truncation_retires_covered_segments_only() {
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 10 });
        for _ in 0..5 {
            push(&mut seg, 10); // five sealed segments, bases 0..50
        }
        push(&mut seg, 3); // active tail at 50
        assert_eq!(seg.segment_count(), 6);
        // Horizon mid-segment: only fully covered segments retire.
        assert_eq!(seg.truncate_below(25), 2);
        assert_eq!(seg.retained_from(), 20);
        assert_eq!(seg.retired_bytes(), 20);
        // Moving the horizon backwards is a no-op.
        assert_eq!(seg.truncate_below(10), 0);
        assert_eq!(seg.retained_from(), 20);
        // Horizon past everything sealed retires the rest of the archive
        // but never the active tail.
        assert_eq!(seg.truncate_below(53), 3);
        assert_eq!(seg.segment_count(), 1);
        assert_eq!(seg.retained_from(), 50);
        assert_eq!(seg.end_lsn(), 53);
    }

    #[test]
    fn views_cover_the_retained_range_contiguously() {
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 32 });
        for i in 0..20 {
            push(&mut seg, 7 + (i % 5));
        }
        seg.truncate_below(40);
        let views = seg.views();
        assert!(!views.is_empty());
        assert_eq!(views[0].base_lsn, seg.retained_from());
        let mut expect = views[0].base_lsn;
        for v in &views {
            assert_eq!(v.base_lsn, expect, "contiguous");
            expect += v.bytes.len() as u64;
        }
        assert_eq!(expect, seg.end_lsn());
    }
}
