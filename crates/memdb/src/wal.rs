//! The WAL manager: group commit over a pluggable log backend.
//!
//! Matches the logging pipeline the paper measures (§6.1): "the system
//! waits until it has 16 KB worth of log records before it commits" —
//! transactions execute and buffer their records; a batch flushes when the
//! group threshold fills (or a timeout expires), and every transaction in
//! the batch becomes durable at the batch's sync completion.

use crate::backend::{AppendTag, LogBackend};
use crate::log::LogRecord;
use crate::segment::{SegmentConfig, SegmentedLog};
use simkit::{SimDuration, SimTime};

/// A transaction's position in the log, used to wait for durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lsn(pub u64);

/// One resolved group flush.
#[derive(Debug, Clone, Copy)]
pub struct FlushReport {
    /// Every LSN at or below this is durable.
    pub durable_upto: Lsn,
    /// When durability was reached.
    pub at: SimTime,
    /// Bytes in the flushed batch.
    pub bytes: u64,
}

/// WAL manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Flush when this many bytes accumulate (paper: 16 KiB).
    pub group_threshold: u64,
    /// Flush a non-empty batch no later than this after its first record.
    pub group_timeout: SimDuration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { group_threshold: 16 << 10, group_timeout: SimDuration::from_millis(5) }
    }
}

/// The group-commit WAL manager.
pub struct WalManager<B: LogBackend> {
    backend: B,
    config: WalConfig,
    /// Encoded, not yet appended bytes.
    pending: Vec<u8>,
    /// When the current batch opened (first record time).
    batch_opened: Option<SimTime>,
    /// Total bytes ever enqueued (the LSN space).
    enqueued: u64,
    /// Durable frontier.
    durable: Lsn,
    flushes: u64,
    /// When the log-writer finished its previous flush: flushes serialize
    /// (queue depth 1 on the log device, paper §6.1). On the pipelined
    /// path this is the CPU hand-off instant of the latest submission.
    log_writer_free: SimTime,
    /// Asynchronously submitted groups not yet reported durable.
    in_flight: Vec<PendingFlush>,
    /// Scratch for draining backend completions.
    scratch: Vec<(AppendTag, SimTime)>,
    /// Opt-in segmented retention over the LSN byte stream
    /// ([`enable_segments`](WalManager::enable_segments)). `None` keeps the
    /// legacy unbounded log and emits no segment telemetry.
    segments: Option<SegmentedLog>,
}

/// One asynchronously submitted group commit awaiting durability.
#[derive(Debug, Clone, Copy)]
struct PendingFlush {
    tag: AppendTag,
    durable_upto: Lsn,
    bytes: u64,
}

impl<B: LogBackend> WalManager<B> {
    /// A manager over `backend`.
    pub fn new(backend: B, config: WalConfig) -> Self {
        WalManager {
            backend,
            config,
            pending: Vec::new(),
            batch_opened: None,
            enqueued: 0,
            durable: Lsn(0),
            flushes: 0,
            log_writer_free: SimTime::ZERO,
            in_flight: Vec::new(),
            scratch: Vec::new(),
            segments: None,
        }
    }

    /// Turn on the segmented log lifecycle (sealed segments, archive,
    /// checkpoint-anchored truncation — `crate::segment`). Must be called
    /// before the first record is enqueued: segment bases are LSNs, and a
    /// log with history would have an untracked prefix.
    pub fn enable_segments(&mut self, config: SegmentConfig) {
        assert_eq!(self.enqueued, 0, "enable_segments requires an empty log");
        self.segments = Some(SegmentedLog::new(config));
    }

    /// The segmented log, when enabled.
    pub fn segments(&self) -> Option<&SegmentedLog> {
        self.segments.as_ref()
    }

    /// Advance the segmented log's truncation horizon to `horizon` (a
    /// completed checkpoint's log offset) and retire fully covered
    /// archived segments. Returns how many segments were retired.
    ///
    /// Panics if segmentation is not enabled or if the horizon runs ahead
    /// of durability — a checkpoint can only anchor what the log device
    /// actually persisted.
    pub fn truncate_below(&mut self, horizon: Lsn) -> usize {
        assert!(
            horizon <= self.durable,
            "truncation horizon {} ahead of durable frontier {}",
            horizon.0,
            self.durable.0
        );
        self.segments
            .as_mut()
            .expect("truncate_below requires enable_segments")
            .truncate_below(horizon.0)
    }

    /// The backend (stats).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (crash injection in tests).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The configuration.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Everything at or below this LSN is durable.
    pub fn durable_upto(&self) -> Lsn {
        self.durable
    }

    /// Group flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Bytes currently waiting in the open batch.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Enqueue a committed transaction's records. Returns the transaction's
    /// LSN and, if the group threshold filled, the flush report (the caller
    /// — the committing worker — performs the flush inline, like a log
    /// writer pinned to its core).
    pub fn append_txn(
        &mut self,
        now: SimTime,
        records: &[LogRecord],
    ) -> (Lsn, Option<FlushReport>) {
        let lsn = self.append_records(now, records);
        let report = if self.threshold_reached() { Some(self.flush(now)) } else { None };
        (lsn, report)
    }

    /// Enqueue a committed transaction's records WITHOUT the inline
    /// blocking flush — the pipelined path checks
    /// [`threshold_reached`](WalManager::threshold_reached) and submits
    /// via [`flush_submit`](WalManager::flush_submit) instead. Returns
    /// the transaction's LSN.
    pub fn append_records(&mut self, now: SimTime, records: &[LogRecord]) -> Lsn {
        if self.batch_opened.is_none() {
            self.batch_opened = Some(now);
        }
        for r in records {
            let start = self.pending.len();
            r.encode_into(&mut self.pending);
            if let Some(seg) = self.segments.as_mut() {
                // Per-record feed: the segmented log seals on a boundary
                // rather than letting a record span two segments.
                seg.append_record_bytes(&self.pending[start..]);
            }
        }
        self.enqueued += records.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        Lsn(self.enqueued)
    }

    /// Whether the open batch has filled the group threshold.
    pub fn threshold_reached(&self) -> bool {
        self.pending.len() as u64 >= self.config.group_threshold
    }

    /// The deadline by which the open batch must flush, if one is open.
    pub fn flush_deadline(&self) -> Option<SimTime> {
        self.batch_opened.map(|t| t + self.config.group_timeout)
    }

    /// Flush the open batch now (threshold reached, timeout fired, or
    /// shutdown). No-op report when nothing is pending.
    ///
    /// The flush runs on the dedicated log-writer path: it starts when the
    /// previous flush has finished (queue depth 1 on the log device) and
    /// does NOT consume worker time — ERMIA pins its log writers to their
    /// own cores (paper §6).
    pub fn flush(&mut self, now: SimTime) -> FlushReport {
        if self.pending.is_empty() {
            return FlushReport { durable_upto: self.durable, at: now, bytes: 0 };
        }
        let bytes = self.pending.len() as u64;
        self.batch_opened = None;
        let start = now.max(self.log_writer_free);
        let t1 = self.backend.append(start, &self.pending);
        let t2 = self.backend.sync(t1);
        // Keep the group buffer's capacity: the next batch encodes into it
        // instead of growing a fresh allocation.
        self.pending.clear();
        self.log_writer_free = t2;
        self.durable = Lsn(self.enqueued);
        self.flushes += 1;
        FlushReport { durable_upto: self.durable, at: t2, bytes }
    }

    /// When the log writer finishes its in-flight flush (back-pressure
    /// horizon for stalled workers).
    pub fn log_writer_free(&self) -> SimTime {
        self.log_writer_free
    }

    /// Submit the open batch to the backend asynchronously (pipelined
    /// group commit): the log writer hands the group off and is free to
    /// take the next one while the device persists this one. Durability
    /// arrives through [`poll_flushes`](WalManager::poll_flushes).
    ///
    /// Returns `None` when nothing is pending.
    pub fn flush_submit(&mut self, now: SimTime) -> Option<AppendTag> {
        if self.pending.is_empty() {
            return None;
        }
        let bytes = self.pending.len() as u64;
        self.batch_opened = None;
        let start = now.max(self.log_writer_free);
        let (tag, handoff) = self.backend.append_submit(start, &self.pending);
        self.pending.clear();
        self.log_writer_free = handoff;
        self.in_flight.push(PendingFlush { tag, durable_upto: Lsn(self.enqueued), bytes });
        Some(tag)
    }

    /// Collect groups the backend reports durable by `now`, advancing the
    /// durable frontier and emitting one [`FlushReport`] per group.
    pub fn poll_flushes(&mut self, now: SimTime, out: &mut Vec<FlushReport>) {
        if self.in_flight.is_empty() {
            return;
        }
        let mut done = std::mem::take(&mut self.scratch);
        done.clear();
        self.backend.drain_completions(now, &mut done);
        for &(tag, at) in &done {
            if let Some(pos) = self.in_flight.iter().position(|p| p.tag == tag) {
                let p = self.in_flight.remove(pos);
                self.durable = self.durable.max(p.durable_upto);
                self.flushes += 1;
                out.push(FlushReport { durable_upto: p.durable_upto, at, bytes: p.bytes });
            }
        }
        done.clear();
        self.scratch = done;
    }

    /// Groups submitted via [`flush_submit`](WalManager::flush_submit)
    /// whose durability has not yet been reported.
    pub fn flushes_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Earliest instant an in-flight group could become durable — the
    /// virtual-time jump target when every pipeline slot is occupied.
    pub fn next_flush_completion_at(&self) -> Option<SimTime> {
        self.backend.next_completion_at()
    }

    /// Shutdown path for the pipelined mode: submit any open batch, drive
    /// every in-flight group durable (the backend's `sync` dominates
    /// them), and deliver the corresponding reports. Returns the instant
    /// everything is durable.
    pub fn drain_all(&mut self, now: SimTime, out: &mut Vec<FlushReport>) -> SimTime {
        self.flush_submit(now);
        if self.in_flight.is_empty() {
            return now;
        }
        let t = self.backend.sync(now.max(self.log_writer_free)).max(now);
        self.poll_flushes(t, out);
        debug_assert!(
            self.in_flight.is_empty(),
            "{} groups still in flight after a dominating sync",
            self.in_flight.len()
        );
        t
    }
}

impl<B: LogBackend + simkit::Instrument> simkit::Instrument for WalManager<B> {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.wal.flushes", self.flushes);
        out.counter("db.wal.bytes_enqueued", self.enqueued);
        out.gauge("db.wal.pending_bytes", self.pending.len() as f64);
        // Segment lifecycle telemetry only exists when segmentation is
        // enabled, so legacy harness snapshots stay byte-identical.
        if let Some(seg) = &self.segments {
            out.gauge("db.wal.segments", seg.segment_count() as f64);
            out.gauge("db.wal.archived_bytes", seg.archived_bytes() as f64);
            out.counter("db.wal.seals", seg.seals());
            out.counter("db.wal.retired_segments", seg.retired_segments());
            out.counter("db.wal.retired_bytes", seg.retired_bytes());
        }
        self.backend.instrument(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NoLog, PmConfig, PmLog};
    use crate::log::{LogOp, LogRecord};

    fn rec(txn: u64, len: usize) -> LogRecord {
        LogRecord {
            txn_id: txn,
            op: LogOp::Insert,
            table: 0,
            key: vec![0; 8].into(),
            value: vec![0; len].into(),
        }
    }

    #[test]
    fn batch_flushes_at_threshold() {
        let mut wal = WalManager::new(
            NoLog::new(),
            WalConfig { group_threshold: 1000, group_timeout: SimDuration::from_millis(1) },
        );
        let (lsn1, fl1) = wal.append_txn(SimTime::ZERO, &[rec(1, 100)]);
        assert!(fl1.is_none());
        assert!(lsn1 > Lsn(0));
        assert!(wal.pending_bytes() > 0);
        // Push past the threshold.
        let (_lsn2, fl2) = wal.append_txn(SimTime::ZERO, &[rec(2, 2000)]);
        let report = fl2.expect("threshold crossed");
        assert_eq!(report.durable_upto, wal.durable_upto());
        assert_eq!(wal.pending_bytes(), 0);
        assert_eq!(wal.flushes(), 1);
    }

    #[test]
    fn timeout_deadline_tracks_batch_open() {
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        assert!(wal.flush_deadline().is_none());
        let t0 = SimTime::from_micros(7);
        wal.append_txn(t0, &[rec(1, 10)]);
        assert_eq!(wal.flush_deadline(), Some(t0 + WalConfig::default().group_timeout));
        wal.flush(t0 + SimDuration::from_millis(10));
        assert!(wal.flush_deadline().is_none());
    }

    #[test]
    fn durability_advances_monotonically() {
        let mut wal = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
        let mut now = SimTime::ZERO;
        let mut last = Lsn(0);
        for i in 0..50 {
            let (_lsn, fl) = wal.append_txn(now, &[rec(i, 400)]);
            if let Some(r) = fl {
                assert!(r.durable_upto >= last);
                last = r.durable_upto;
                now = r.at;
            }
        }
        let final_report = wal.flush(now);
        assert!(final_report.durable_upto >= last);
        assert!(wal.backend().bytes_written() > 0);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        let r = wal.flush(SimTime::from_micros(3));
        assert_eq!(r.bytes, 0);
        assert_eq!(r.at, SimTime::from_micros(3));
        assert_eq!(wal.flushes(), 0);
    }

    #[test]
    fn pipelined_flushes_overlap_and_converge() {
        // A long fence makes durability lag the CPU hand-off, so two
        // submissions can genuinely be in flight at once.
        let pm = PmConfig { fence: SimDuration::from_micros(50), ..PmConfig::default() };
        let mut wal = WalManager::new(
            PmLog::new(pm),
            WalConfig { group_threshold: 1000, group_timeout: SimDuration::from_millis(1) },
        );
        let now = SimTime::ZERO;
        let lsn1 = wal.append_records(now, &[rec(1, 1200)]);
        wal.flush_submit(now).expect("first group submitted");
        let lsn2 = wal.append_records(now, &[rec(2, 1200)]);
        wal.flush_submit(now).expect("second group submitted");
        assert_eq!(wal.flushes_in_flight(), 2);
        assert_eq!(wal.durable_upto(), Lsn(0), "nothing durable before completions drain");

        let mut reports = Vec::new();
        let t = wal.drain_all(now, &mut reports);
        assert_eq!(wal.flushes_in_flight(), 0);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].durable_upto, lsn1);
        assert_eq!(reports[1].durable_upto, lsn2);
        assert!(reports.iter().all(|r| r.at <= t));
        assert_eq!(wal.durable_upto(), lsn2);
        assert_eq!(wal.flushes(), 2);
    }

    #[test]
    fn pipelined_poll_delivers_in_completion_order() {
        let mut wal = WalManager::new(
            NoLog::new(),
            WalConfig { group_threshold: 100, group_timeout: SimDuration::from_millis(1) },
        );
        let t0 = SimTime::from_micros(3);
        wal.append_records(t0, &[rec(1, 200)]);
        assert!(wal.threshold_reached());
        wal.flush_submit(t0);
        let mut reports = Vec::new();
        wal.poll_flushes(t0, &mut reports);
        // NoLog completes at the submit instant.
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].at, t0);
        assert_eq!(wal.flushes_in_flight(), 0);
    }

    #[test]
    fn segments_track_the_lsn_space() {
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        wal.enable_segments(crate::segment::SegmentConfig { segment_bytes: 1 << 10 });
        let mut now = SimTime::ZERO;
        for i in 0..40 {
            let (_lsn, fl) = wal.append_txn(now, &[rec(i, 100)]);
            if let Some(r) = fl {
                now = r.at;
            }
        }
        wal.flush(now);
        let seg = wal.segments().expect("enabled");
        assert_eq!(seg.end_lsn(), wal.durable_upto().0, "segments cover every enqueued byte");
        assert!(seg.seals() > 0, "1 KiB segments must have rotated");
        // Truncating to the durable frontier retires the whole archive.
        let retired = wal.truncate_below(wal.durable_upto());
        assert_eq!(retired as u64, wal.segments().unwrap().seals());
        assert_eq!(wal.segments().unwrap().archived_bytes(), 0);
    }

    #[test]
    fn record_on_exact_segment_boundary_seals_clean() {
        // Regression for the pending-group hazard: a record whose encoded
        // length lands exactly on the segment boundary must seal a full
        // segment, not span into the next one.
        let record = rec(1, 100);
        let len = record.encoded_len() as u64;
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        wal.enable_segments(crate::segment::SegmentConfig { segment_bytes: 3 * len });
        for _ in 0..3 {
            wal.append_records(SimTime::ZERO, std::slice::from_ref(&record));
        }
        let seg = wal.segments().unwrap();
        assert_eq!(seg.seals(), 1);
        let sealed = seg.sealed().next().unwrap();
        assert_eq!(sealed.bytes.len() as u64, 3 * len, "exactly full, nothing spilled");
        assert!(sealed.verify());
        assert_eq!(seg.segment_count(), 1, "active segment is empty after the exact fill");
    }

    #[test]
    #[should_panic(expected = "ahead of durable frontier")]
    fn truncation_cannot_outrun_durability() {
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        wal.enable_segments(crate::segment::SegmentConfig::default());
        wal.append_records(SimTime::ZERO, &[rec(1, 100)]);
        // Enqueued but never flushed: the horizon may not pass Lsn(0).
        wal.truncate_below(Lsn(1));
    }

    #[test]
    fn lsn_reflects_encoded_bytes() {
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        let record = rec(1, 100);
        let (lsn, _) = wal.append_txn(SimTime::ZERO, std::slice::from_ref(&record));
        assert_eq!(lsn, Lsn(record.encoded_len() as u64));
    }
}
