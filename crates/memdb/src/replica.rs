//! Hot-standby replica apply over a Villars secondary.
//!
//! The secondary *server* reads the shipped log from its own Villars
//! device's destage ring (paper Fig. 1 right, step (3): "the update of the
//! remote memory is done by the remote Database") and replays it into its
//! in-memory tables — the log-shipping consumer side.

use crate::log::{decode_one, fnv1a, DecodeError, LogOp};
use crate::segment::SegmentView;
use crate::storage::Database;
use simkit::SimTime;
use xssd_core::Cluster;

/// A replica database fed from a secondary device's destaged log.
pub struct Replica {
    /// The replica's in-memory state.
    pub db: Database,
    dev: usize,
    lane: usize,
    /// Log byte offset consumed so far.
    cursor: u64,
    /// Carry buffer for a record split across reads.
    carry: Vec<u8>,
    txns_applied: u64,
    /// Records of transactions whose commit marker has not yet arrived.
    staged: Vec<crate::log::LogRecord>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("cursor", &self.cursor)
            .field("txns_applied", &self.txns_applied)
            .finish()
    }
}

impl Replica {
    /// A replica reading from device `dev` (a Villars secondary) in
    /// `cluster`. The schema (`tables`) must match the primary's catalog
    /// order.
    pub fn new(dev: usize, tables: &[&str]) -> Self {
        let mut db = Database::new();
        for t in tables {
            db.create_table(t);
        }
        Replica {
            db,
            dev,
            lane: 0,
            cursor: 0,
            carry: Vec::new(),
            txns_applied: 0,
            staged: Vec::new(),
        }
    }

    /// A replica resuming from a restored snapshot: `db` is the decoded
    /// snapshot state and `log_offset` its log offset — apply continues
    /// from there instead of replaying total history. The lifecycle
    /// counterpart of [`Replica::new`]: a standby that was down long
    /// enough to need a snapshot bootstraps here, then consumes the
    /// archive ([`Replica::apply_archived`]) and the live stream
    /// ([`Replica::catch_up`]).
    pub fn from_snapshot(dev: usize, db: Database, log_offset: u64) -> Self {
        Replica {
            db,
            dev,
            lane: 0,
            cursor: log_offset,
            carry: Vec::new(),
            txns_applied: 0,
            staged: Vec::new(),
        }
    }

    /// Apply host-archived segments from the replica's cursor onward —
    /// the catch-up source for ranges the secondary device's destage ring
    /// has already recycled. Sealed segments are verified against their
    /// seal CRC; a gap between the cursor and the archive panics (the
    /// archive was truncated past what this replica needs). Returns the
    /// number of transactions applied.
    pub fn apply_archived(&mut self, segments: &[SegmentView<'_>]) -> u64 {
        let before = self.txns_applied;
        for seg in segments {
            let end = seg.base_lsn + seg.bytes.len() as u64;
            if end <= self.cursor {
                continue; // already consumed
            }
            assert!(
                seg.base_lsn <= self.cursor,
                "archive gap: segment starts at LSN {} but the replica cursor is {}",
                seg.base_lsn,
                self.cursor
            );
            if let Some(crc) = seg.crc {
                assert_eq!(
                    fnv1a(seg.bytes),
                    crc,
                    "archived segment at LSN {} failed its seal CRC",
                    seg.base_lsn
                );
            }
            let start = (self.cursor - seg.base_lsn) as usize;
            self.carry.extend_from_slice(&seg.bytes[start..]);
            self.cursor = end;
            self.drain_carry();
        }
        self.txns_applied - before
    }

    /// Transactions fully applied.
    pub fn txns_applied(&self) -> u64 {
        self.txns_applied
    }

    /// Log bytes consumed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Pull everything the secondary device has destaged and apply the
    /// complete transactions found. Returns the number of transactions
    /// applied in this pass.
    pub fn catch_up(&mut self, cluster: &mut Cluster, now: SimTime) -> u64 {
        cluster.advance(now);
        let destaged = cluster.device(self.dev).destaged_upto(self.lane);
        if destaged <= self.cursor {
            return 0;
        }
        let want = (destaged - self.cursor) as usize;
        let Some((_ready, bytes)) =
            cluster.device_mut(self.dev).read_destaged(now, self.lane, self.cursor, want)
        else {
            return 0;
        };
        self.cursor += bytes.len() as u64;
        self.carry.extend_from_slice(&bytes);
        let before = self.txns_applied;
        self.drain_carry();
        self.txns_applied - before
    }

    /// Decode complete records from the carry buffer, applying each
    /// transaction when its commit marker arrives (so the replica is always
    /// transaction-consistent).
    fn drain_carry(&mut self) {
        let mut consumed = 0usize;
        loop {
            match decode_one(&self.carry[consumed..]) {
                Ok((rec, used)) => {
                    consumed += used;
                    if rec.op == LogOp::Commit {
                        let txn = rec.txn_id;
                        for r in self.staged.iter().filter(|r| r.txn_id == txn) {
                            self.db.apply_record(r);
                        }
                        self.staged.retain(|r| r.txn_id != txn);
                        self.txns_applied += 1;
                    } else {
                        self.staged.push(rec);
                    }
                }
                Err(DecodeError::Truncated) => break,
                Err(_) => break, // filler or corruption: wait for more context
            }
        }
        self.carry.drain(..consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::encode_txn;
    use crate::storage::Database;
    use simkit::{SimDuration, SimTime};
    use xssd_core::{VillarsConfig, XLogFile};

    /// Primary writes through the fast side; replica tail-reads the
    /// secondary device and converges to the same fingerprint.
    #[test]
    fn replica_converges_to_primary_state() {
        let mut cluster = Cluster::new();
        let p = cluster.add_device(VillarsConfig::small());
        let s = cluster.add_device(VillarsConfig::small());
        let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s]);

        let mut primary = Database::new();
        let tab = primary.create_table("accounts");
        let mut file = XLogFile::open(p);
        let mut replica = Replica::new(s, &["accounts"]);

        let mut now = t0;
        for i in 0..20u32 {
            let mut ctx = primary.begin();
            primary.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 64]);
            let recs = primary.commit(ctx).unwrap();
            let bytes = encode_txn(&recs);
            now = file.x_pwrite(&mut cluster, now, &bytes).unwrap();
        }
        now = file.x_fsync(&mut cluster, now).unwrap();
        // Wait past the destage latency threshold so the tail page lands on
        // both devices' conventional sides.
        let settle = now + SimDuration::from_millis(2);
        cluster.advance(settle);
        let applied = replica.catch_up(&mut cluster, settle);
        assert_eq!(applied, 20, "all transactions shipped and applied");
        assert_eq!(replica.db.fingerprint(), primary.fingerprint());
    }

    /// Replica convergence under the conservative parallel cluster core:
    /// the shipped log bytes, the commit timeline, and the replica
    /// fingerprint must be identical to the sequential oracle's.
    #[test]
    fn replica_convergence_is_execution_mode_invariant() {
        let run = |threads: usize| -> (SimTime, u64, u64) {
            let mut cluster = Cluster::with_sim_threads(threads);
            let p = cluster.add_device(VillarsConfig::small());
            let s = cluster.add_device(VillarsConfig::small());
            let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s]);

            let mut primary = Database::new();
            let tab = primary.create_table("accounts");
            let mut file = XLogFile::open(p);
            let mut replica = Replica::new(s, &["accounts"]);

            let mut now = t0;
            for i in 0..20u32 {
                let mut ctx = primary.begin();
                primary.insert(
                    &mut ctx,
                    tab,
                    crate::storage::keys::composite(&[i]),
                    vec![i as u8; 64],
                );
                let recs = primary.commit(ctx).unwrap();
                now = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).unwrap();
            }
            now = file.x_fsync(&mut cluster, now).unwrap();
            let settle = now + SimDuration::from_millis(2);
            cluster.advance(settle);
            let applied = replica.catch_up(&mut cluster, settle);
            (now, applied, replica.db.fingerprint())
        };
        let seq = run(1);
        assert_eq!(seq, run(4), "replica convergence diverged between execution modes");
        assert_eq!(seq.1, 20, "all transactions shipped and applied");
    }

    /// A standby bootstrapped from a snapshot converges by consuming the
    /// sealed-segment archive alone — no live device needed for ranges
    /// the destage ring has recycled.
    #[test]
    fn replica_applies_archived_segments_from_a_snapshot() {
        use crate::segment::{SegmentConfig, SegmentedLog};
        let mut primary = Database::new();
        let tab = primary.create_table("t");
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 128 });
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for i in 0..20u32 {
            let mut ctx = primary.begin();
            primary.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 24]);
            for r in primary.commit(ctx).unwrap() {
                let start = stream.len();
                r.encode_into(&mut stream);
                seg.append_record_bytes(&stream[start..]);
            }
            boundaries.push(stream.len() as u64);
        }
        // Snapshot after the 8th transaction; retention retires the
        // archive below it.
        let snap_offset = boundaries[7];
        let mut snap_db = Database::new();
        snap_db.create_table("t");
        crate::recovery::recover(&mut snap_db, &stream[..snap_offset as usize]);
        seg.truncate_below(snap_offset.min(seg.end_lsn()));

        let mut replica = Replica::from_snapshot(0, snap_db, snap_offset);
        let applied = replica.apply_archived(&seg.views());
        assert_eq!(applied, 12, "the 12 post-snapshot transactions apply");
        assert_eq!(replica.cursor(), seg.end_lsn());
        assert_eq!(replica.db.fingerprint(), primary.fingerprint());
        // Idempotent: a second pass over the same archive applies nothing.
        assert_eq!(replica.apply_archived(&seg.views()), 0);
    }

    /// Partial shipping: a transaction whose commit marker has not arrived
    /// must not be visible on the replica.
    #[test]
    fn replica_stays_transaction_consistent() {
        let mut cluster = Cluster::new();
        let p = cluster.add_device(VillarsConfig::small());
        let s = cluster.add_device(VillarsConfig::small());
        let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s]);

        let mut primary = Database::new();
        let tab = primary.create_table("t");
        let mut file = XLogFile::open(p);
        let mut replica = Replica::new(s, &["t"]);

        let mut ctx = primary.begin();
        primary.insert(&mut ctx, tab, b"k".to_vec(), b"v".to_vec());
        let recs = primary.commit(ctx).unwrap();
        let bytes = encode_txn(&recs);
        // Ship only the first record, withholding the commit marker.
        let split = recs[0].encoded_len();
        let mut now = file.x_pwrite(&mut cluster, t0, &bytes[..split]).unwrap();
        now = file.x_fsync(&mut cluster, now).unwrap();
        let settle = now + SimDuration::from_millis(2);
        cluster.advance(settle);
        let applied = replica.catch_up(&mut cluster, settle);
        assert_eq!(applied, 0);
        assert!(replica.db.peek(tab, b"k").is_none(), "uncommitted row invisible");

        // Ship the rest; the transaction becomes visible.
        let mut now2 = file.x_pwrite(&mut cluster, settle, &bytes[split..]).unwrap();
        now2 = file.x_fsync(&mut cluster, now2).unwrap();
        let settle2 = now2 + SimDuration::from_millis(2);
        cluster.advance(settle2);
        let applied2 = replica.catch_up(&mut cluster, settle2);
        assert_eq!(applied2, 1);
        assert_eq!(replica.db.peek(tab, b"k").unwrap(), b"v");
    }
}
