//! # memdb — main-memory database substrate
//!
//! An ERMIA-class main-memory engine (paper §6: "they maintain all their
//! data in DRAM and persist only the transaction log, which therefore
//! becomes their main bottleneck"):
//!
//! - [`storage`] — ordered in-memory tables, transactions with read
//!   validation, order-preserving key encoding;
//! - [`log`] — self-framing WAL records with checksums;
//! - [`backend`] — the pluggable log devices Fig. 9 compares ([`NoLog`],
//!   [`PmLog`], [`NvmeLog`], [`XssdLog`]);
//! - [`wal`] — group commit (16 KiB threshold + timeout);
//! - [`runner`] — pinned-worker workload driver (latency/throughput);
//! - [`recovery`] — analysis+redo from the destaged log, bounded to
//!   latest snapshot + subsequent segments when segmentation is on;
//! - [`segment`] — sealed-segment archive with checkpoint-anchored
//!   truncation (the log lifecycle, docs/ROBUSTNESS.md);
//! - [`replica`] — hot-standby apply over a Villars secondary.

#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod failover;
pub mod key;
pub mod log;
pub mod recovery;
pub mod replica;
pub mod runner;
pub mod segment;
pub mod storage;
pub mod wal;

pub use backend::{AppendTag, LogBackend, NoLog, NvmeLog, PmConfig, PmLog, XssdLog};
pub use failover::{
    durable_log_stream, fail_over, rejoin_secondary, rejoin_secondary_from_archive, FailoverReport,
    RejoinReport,
};

pub use checkpoint::{
    decode_snapshot, encode_snapshot, CheckpointMeta, Checkpointer, SnapshotError,
};
pub use key::SmallKey;
pub use log::{decode_one, decode_stream, DecodeError, LogOp, LogRecord, TableId};
pub use recovery::{encode_txn, recover, replay_segments, RecoveryReport, SegmentReplayReport};
pub use replica::Replica;
pub use runner::{
    run_observed, run_workload, KindCounts, ObserveConfig, ObservedRun, RunReport, RunnerConfig,
    SeriesBucket, TxnOutcome,
};
pub use segment::{SealedSegment, SegmentConfig, SegmentView, SegmentedLog};
pub use storage::{keys, Database, Key, Row, Table, TxnCtx, TxnError};
pub use wal::{FlushReport, Lsn, WalConfig, WalManager};
