//! Shared contract suite for every [`LogBackend`]: the WAL manager and
//! the Fig. 9 runner assume these invariants regardless of which device
//! backs the log.
//!
//! - `append` never returns before its call instant and is monotonic
//!   under a monotonic clock;
//! - `sync` dominates every prior append — blocking or asynchronous;
//! - `bytes_written` accounts exactly the bytes handed over;
//! - the asynchronous path delivers every submitted unit exactly once,
//!   never durable before its submission.

use memdb::{AppendTag, LogBackend, NoLog, NvmeLog, PmConfig, PmLog, XssdLog};
use simkit::{SimDuration, SimTime};
use ssd::{ConventionalSsd, SsdConfig};
use xssd_core::{Cluster, VillarsConfig};

fn nolog() -> NoLog {
    NoLog::new()
}

fn pmlog() -> PmLog {
    PmLog::new(PmConfig::default())
}

fn nvmelog() -> NvmeLog {
    NvmeLog::new(ConventionalSsd::new(SsdConfig::small()), 0, 64)
}

fn xssdlog() -> XssdLog {
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(VillarsConfig::small());
    XssdLog::new(cluster, dev, "villars-sram")
}

/// Blocking path: append instants are causal and monotonic, the final
/// sync dominates every one of them, and the byte ledger balances.
fn check_blocking_contract<B: LogBackend>(b: &mut B) {
    let mut now = SimTime::ZERO;
    let mut total = 0u64;
    let mut returns = Vec::new();
    for i in 0..8usize {
        let data = vec![0xA5u8; 512 * (i + 1)];
        let t = b.append(now, &data);
        assert!(t >= now, "{}: append returned before its call instant", b.name());
        if let Some(&prev) = returns.last() {
            assert!(t >= prev, "{}: append returns ran backwards", b.name());
        }
        total += data.len() as u64;
        returns.push(t);
        now = t + SimDuration::from_micros(3);
    }
    let t_sync = b.sync(now);
    assert!(t_sync >= now, "{}: sync returned before its call instant", b.name());
    for &t in &returns {
        assert!(t_sync >= t, "{}: sync at {t_sync} does not dominate append at {t}", b.name());
    }
    assert_eq!(b.bytes_written(), total, "{}: byte ledger mismatch", b.name());
}

/// Drive the asynchronous path dry, jumping virtual time to each next
/// completion bound (with a nudge when the backend cannot bound it).
fn drain_until_dry<B: LogBackend>(b: &mut B, mut now: SimTime) -> Vec<(AppendTag, SimTime)> {
    let mut out = Vec::new();
    let mut rounds = 0u32;
    while b.appends_in_flight() > 0 {
        b.drain_completions(now, &mut out);
        if b.appends_in_flight() == 0 {
            break;
        }
        let hint = b.next_completion_at().unwrap_or(now + SimDuration::from_micros(1));
        now = hint.max(now + SimDuration::from_nanos(100));
        rounds += 1;
        assert!(rounds < 100_000, "{}: appends never completed", b.name());
    }
    out
}

/// Async path: every unit is delivered exactly once, durability never
/// precedes submission, and the ledger still balances.
fn check_async_contract<B: LogBackend>(b: &mut B) {
    let mut now = SimTime::ZERO;
    let mut submitted = Vec::new();
    let mut total = 0u64;
    for _ in 0..4 {
        let data = vec![0x3Cu8; 1024];
        let (tag, handoff) = b.append_submit(now, &data);
        assert!(handoff >= now, "{}: hand-off before the submit instant", b.name());
        total += data.len() as u64;
        submitted.push((tag, now));
        now = handoff.max(now);
    }
    assert_eq!(b.appends_in_flight(), 4, "{}: in-flight count after 4 submits", b.name());

    let done = drain_until_dry(b, now);
    assert_eq!(done.len(), 4, "{}: delivered unit count", b.name());
    assert_eq!(b.appends_in_flight(), 0);
    let mut tags: Vec<AppendTag> = done.iter().map(|d| d.0).collect();
    tags.sort();
    tags.dedup();
    assert_eq!(tags.len(), 4, "{}: a unit was delivered twice", b.name());
    for &(tag, at) in &done {
        let (_, sub_at) = submitted.iter().find(|(t, _)| *t == tag).expect("unknown tag");
        assert!(at >= *sub_at, "{}: unit durable before it was submitted", b.name());
    }
    assert!(
        done.windows(2).all(|w| w[0].1 <= w[1].1),
        "{}: completion instants delivered out of order",
        b.name()
    );
    assert_eq!(b.bytes_written(), total, "{}: byte ledger mismatch (async)", b.name());
}

/// `sync` called with units still in flight dominates them, and their
/// completions are still delivered (exactly once) afterwards.
fn check_sync_dominates_async<B: LogBackend>(b: &mut B) {
    let mut now = SimTime::from_micros(5);
    for _ in 0..3 {
        let (_, handoff) = b.append_submit(now, &vec![9u8; 2048]);
        now = now.max(handoff);
    }
    assert_eq!(b.appends_in_flight(), 3);
    let t_sync = b.sync(now);
    assert!(t_sync >= now);
    let mut out = Vec::new();
    b.drain_completions(t_sync, &mut out);
    assert_eq!(out.len(), 3, "{}: sync lost in-flight units", b.name());
    assert_eq!(b.appends_in_flight(), 0);
    for &(_, at) in &out {
        assert!(
            at <= t_sync,
            "{}: sync at {t_sync} does not dominate a unit durable at {at}",
            b.name()
        );
    }
}

macro_rules! contract_tests {
    ($mod_name:ident, $ctor:ident) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn blocking_contract() {
                check_blocking_contract(&mut $ctor());
            }

            #[test]
            fn async_contract() {
                check_async_contract(&mut $ctor());
            }

            #[test]
            fn sync_dominates_async() {
                check_sync_dominates_async(&mut $ctor());
            }
        }
    };
}

contract_tests!(no_log, nolog);
contract_tests!(pm_log, pmlog);
contract_tests!(nvme_log, nvmelog);
contract_tests!(xssd_log, xssdlog);
