//! Hand-rolled property test over fault seeds (paper §4.1 / §7.1).
//!
//! Property: under *any* deterministic fault schedule — flash transient
//! retries, permanent bad-block growth, TLP drops — a crash-restart of a
//! replicated pair recovers every committed transaction from every copy
//! and never resurrects a transaction whose commit marker was not logged,
//! even when its records were durably destaged.
//!
//! No property-testing crate is available in this workspace, so the sweep
//! is driven by a seeded [`DetRng`]: a dozen derived seeds each configure a
//! different fault mix and workload shape. A failing seed prints in the
//! assertion message and replays exactly.

use memdb::{durable_log_stream, encode_txn, keys, recover, Database, LogOp, LogRecord};
use simkit::faults::{FaultPlan, FlashFaultConfig, TransportFaultConfig};
use simkit::{DetRng, SimDuration, SimTime};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// One replicated commit-crash-recover arc under a seed-derived fault mix.
fn run_case(seed: u64) {
    let mut cluster = Cluster::new();
    let p = cluster.add_device(VillarsConfig::small());
    let s = cluster.add_device(VillarsConfig::small());
    let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s]);

    // Rates themselves vary with the seed, so the sweep covers quiet and
    // hostile mixes rather than twelve samples of one distribution.
    let mut mix = DetRng::new(seed).fork(0xA117);
    let plan = FaultPlan {
        seed,
        flash: FlashFaultConfig {
            transient_read: 0.02 + 0.10 * mix.unit(),
            transient_program: 0.02 + 0.10 * mix.unit(),
            permanent_program: 0.05 * mix.unit(),
            max_retries: 3,
        },
        transport: TransportFaultConfig {
            tlp_drop: 0.08 * mix.unit(),
            replay_timeout: SimDuration::from_micros(5),
        },
        ..FaultPlan::disabled()
    };
    cluster.arm_faults(&plan);

    let mut db = Database::new();
    let tab = db.create_table("t");
    let mut file = XLogFile::open(p);
    let mut now = t0;
    let mut shape = DetRng::new(seed).fork(0xCA5E);
    let n_txns = 16 + (seed % 17) as u32;
    let mut live: Vec<u32> = Vec::new();
    for i in 0..n_txns {
        let mut ctx = db.begin();
        let val_len = 16 + (shape.next_u64() % 96) as usize;
        db.insert(&mut ctx, tab, keys::composite(&[i]), vec![(i % 251) as u8; val_len]);
        if !live.is_empty() && shape.chance(0.3) {
            let victim = live.swap_remove((shape.next_u64() as usize) % live.len());
            db.delete(&mut ctx, tab, keys::composite(&[victim]));
        }
        live.push(i);
        let recs = db.commit(ctx).expect("commit");
        let t = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).expect("x_pwrite");
        now = file.x_fsync(&mut cluster, t).expect("x_fsync");
    }

    // A durable-but-uncommitted tail: records with no commit marker. Even
    // fsynced onto both copies, recovery must never apply it.
    let ghost = LogRecord {
        txn_id: 0xDEAD_0000 + seed,
        op: LogOp::Insert,
        table: tab,
        key: b"ghost".to_vec().into(),
        value: vec![0xEE; 32].into(),
    };
    let t = file.x_pwrite(&mut cluster, now, &ghost.encode()).expect("x_pwrite");
    now = file.x_fsync(&mut cluster, t).expect("x_fsync");

    // Crash-restart: both copies power-fail, each crash-destages its
    // residue; recovery from either copy alone must rebuild the database.
    let settle = now + SimDuration::from_millis(2);
    cluster.advance(settle);
    cluster.power_fail(p, settle);
    cluster.power_fail(s, settle);
    for dev in [p, s] {
        cluster.reboot_device(dev);
        let stream = durable_log_stream(&mut cluster, settle, dev, 0);
        let mut recovered = Database::new();
        recovered.create_table("t");
        let rep = recover(&mut recovered, &stream);
        assert_eq!(
            rep.txns_committed as u32, n_txns,
            "seed {seed:#x} dev {dev}: committed transactions lost"
        );
        assert!(
            recovered.peek(tab, b"ghost").is_none(),
            "seed {seed:#x} dev {dev}: uncommitted transaction resurrected"
        );
        assert_eq!(
            recovered.fingerprint(),
            db.fingerprint(),
            "seed {seed:#x} dev {dev}: recovered state diverged from the live database"
        );
    }
}

#[test]
fn any_fault_schedule_recovers_committed_txns_only() {
    let mut seeds = DetRng::new(0x5EED_53ED);
    for _ in 0..12 {
        run_case(seeds.next_u64());
    }
}
