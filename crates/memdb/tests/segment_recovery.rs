//! Property tests for the segmented WAL lifecycle (docs/ROBUSTNESS.md,
//! "Log lifecycle"): seeded random workloads against random snapshot,
//! truncation, tear, and corruption points. The invariants:
//!
//! 1. **Committed-prefix exactness.** Recovery from any durable prefix
//!    reproduces exactly the transactions whose commit marker is durable —
//!    never a partial transaction, never an uncommitted orphan.
//! 2. **Dual-path equality.** Snapshot restore + bounded segment replay
//!    equals the flat total-history pass for any snapshot boundary and any
//!    retention horizon at or below it.
//! 3. **Rejoin convergence.** A standby bootstrapped from a snapshot
//!    converges through the sealed archive alone after truncation, and a
//!    second pass over the same archive is a no-op.
//!
//! Every case replays bit-for-bit from its seed; tear and corruption
//! draws come from the `site::SEGMENT_TAIL` fault stream so arming other
//! sites never perturbs these schedules.

use memdb::{
    keys, recover, replay_segments, Database, LogOp, LogRecord, Replica, SegmentConfig,
    SegmentView, SegmentedLog,
};
use simkit::faults::{site, FaultPlan};
use simkit::DetRng;

const SEEDS: [u64; 8] = [0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7];

/// A seeded random history: the primary's final state, the flat log
/// stream, the parallel segmented archive, and per-transaction oracles.
struct History {
    primary: Database,
    stream: Vec<u8>,
    seg: SegmentedLog,
    /// Stream offset one past each committed transaction's commit marker.
    boundaries: Vec<u64>,
    /// Primary fingerprint after each committed transaction.
    fingerprints: Vec<u64>,
    /// Fingerprint of the empty (pre-history) database.
    empty_fp: u64,
}

impl History {
    /// The fingerprint recovery must produce when exactly the first
    /// `boundaries[i] <= durable` transactions survive.
    fn expected_at(&self, durable: u64) -> u64 {
        self.boundaries
            .iter()
            .rposition(|&b| b <= durable)
            .map_or(self.empty_fp, |i| self.fingerprints[i])
    }

    fn fresh(&self) -> Database {
        let mut db = Database::new();
        db.create_table("t");
        db
    }

    /// Owned copies of the retained segment views, for corruption.
    fn owned_views(&self) -> Vec<(u64, Vec<u8>, Option<u32>)> {
        self.seg.views().iter().map(|v| (v.base_lsn, v.bytes.to_vec(), v.crc)).collect()
    }
}

fn borrow_views(owned: &[(u64, Vec<u8>, Option<u32>)]) -> Vec<SegmentView<'_>> {
    owned
        .iter()
        .map(|(base, bytes, crc)| SegmentView { base_lsn: *base, bytes, crc: *crc })
        .collect()
}

/// Build a random committed history with uncommitted orphan records
/// sprinkled through the stream (transactions whose commit marker never
/// made it — they must never surface after recovery).
fn random_history(seed: u64) -> History {
    let mut rng = DetRng::new(seed);
    let segment_bytes = *rng.pick(&[96u64, 160, 256, 512]);
    let txns = rng.uniform(25, 60) as usize;

    let mut primary = Database::new();
    let tab = primary.create_table("t");
    let empty_fp = primary.fingerprint();
    let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes });
    let mut stream = Vec::new();
    let mut boundaries = Vec::new();
    let mut fingerprints = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next_key = 0u32;

    let push_record = |stream: &mut Vec<u8>, seg: &mut SegmentedLog, r: &LogRecord| {
        let start = stream.len();
        r.encode_into(stream);
        seg.append_record_bytes(&stream[start..]);
    };

    for i in 0..txns {
        let mut ctx = primary.begin();
        for _ in 0..rng.uniform(1, 3) {
            let delete = !live.is_empty() && rng.chance(0.2);
            if delete {
                let idx = rng.uniform(0, live.len() as u64 - 1) as usize;
                let k = live.swap_remove(idx);
                primary.delete(&mut ctx, tab, keys::composite(&[k]));
            } else {
                let overwrite = !live.is_empty() && rng.chance(0.3);
                let val = vec![rng.next_u64() as u8; rng.uniform(1, 48) as usize];
                if overwrite {
                    let k = *rng.pick(&live);
                    primary.update(&mut ctx, tab, keys::composite(&[k]), val);
                } else {
                    next_key += 1;
                    live.push(next_key);
                    primary.insert(&mut ctx, tab, keys::composite(&[next_key]), val);
                }
            }
        }
        for r in primary.commit(ctx).expect("single-threaded commit") {
            push_record(&mut stream, &mut seg, &r);
        }
        boundaries.push(stream.len() as u64);
        fingerprints.push(primary.fingerprint());

        // Occasionally interleave an orphan: records without a commit
        // marker, as a crashed writer would leave behind.
        if rng.chance(0.15) {
            let orphan = LogRecord {
                txn_id: 1_000_000 + i as u64,
                op: LogOp::Insert,
                table: tab,
                key: keys::composite(&[u32::MAX - i as u32]),
                value: vec![0xEE; rng.uniform(1, 32) as usize].into(),
            };
            push_record(&mut stream, &mut seg, &orphan);
        }
    }

    History { primary, stream, seg, boundaries, fingerprints, empty_fp }
}

/// Property 2: for any snapshot boundary, restoring the prefix and then
/// replaying the retained segments equals the primary — and the replay
/// cost is exactly the post-snapshot byte range, not total history.
#[test]
fn snapshot_plus_segment_replay_matches_flat_recovery() {
    for seed in SEEDS {
        let h = random_history(seed);
        let durable = h.stream.len() as u64;
        let mut rng = DetRng::new(seed ^ 0x5EED);
        for _ in 0..4 {
            let snap = h.boundaries[rng.uniform(0, h.boundaries.len() as u64 - 1) as usize];
            let mut db = h.fresh();
            recover(&mut db, &h.stream[..snap as usize]);
            let report = replay_segments(&mut db, snap, &h.seg.views(), durable);
            assert_eq!(db.fingerprint(), h.primary.fingerprint(), "seed {seed} snap {snap}");
            assert_eq!(report.replay_bytes, durable - snap, "replay is bounded by the snapshot");
            assert_eq!(report.torn_bytes, 0);
        }
    }
}

/// Property 2 under retention: truncating the archive to any horizon at
/// or below the snapshot loses nothing.
#[test]
fn truncation_below_the_snapshot_loses_nothing() {
    for seed in SEEDS {
        let mut rng = DetRng::new(seed ^ 0x7BC);
        let mut h = random_history(seed);
        let durable = h.stream.len() as u64;
        let si = rng.uniform(1, h.boundaries.len() as u64 - 1) as usize;
        let snap = h.boundaries[si];
        let horizon = h.boundaries[rng.uniform(0, si as u64) as usize];
        h.seg.truncate_below(horizon);
        assert!(h.seg.retained_from() <= snap, "the snapshot's suffix stays retained");
        let mut db = h.fresh();
        recover(&mut db, &h.stream[..snap as usize]);
        let report = replay_segments(&mut db, snap, &h.seg.views(), durable);
        assert_eq!(db.fingerprint(), h.primary.fingerprint(), "seed {seed}");
        assert_eq!(report.replay_bytes, durable - snap);
    }
}

/// Property 1: a tear at any byte — record boundary, mid-record, or
/// mid-commit-marker — recovers exactly the transactions whose commit
/// marker is durable. Checked against an independent oracle (the
/// fingerprint ledger built while the history ran), and against the flat
/// pass for dual-path agreement.
#[test]
fn torn_tail_recovers_exactly_the_committed_prefix() {
    for seed in SEEDS {
        let h = random_history(seed);
        let plan = FaultPlan { seed, ..FaultPlan::disabled() };
        let mut rng = plan.rng_for(site::SEGMENT_TAIL);
        for _ in 0..6 {
            let tear = rng.uniform(0, h.stream.len() as u64);
            let mut db = h.fresh();
            replay_segments(&mut db, 0, &h.seg.views(), tear);
            let expected = h.expected_at(tear);
            assert_eq!(db.fingerprint(), expected, "seed {seed} tear {tear}");
            let mut oracle = h.fresh();
            recover(&mut oracle, &h.stream[..tear as usize]);
            assert_eq!(oracle.fingerprint(), expected, "flat pass agrees at tear {tear}");
        }
    }
}

/// Property 1 under corruption: flipping any byte of the retained archive
/// leaves recovery on some committed prefix — never a state that no
/// committed history produced, and never the corrupted suffix.
#[test]
fn corrupted_archive_never_resurrects_uncommitted_state() {
    for seed in SEEDS {
        let h = random_history(seed);
        let durable = h.stream.len() as u64;
        let plan = FaultPlan { seed, ..FaultPlan::disabled() };
        let mut rng = plan.rng_for(site::SEGMENT_TAIL);
        for _ in 0..4 {
            let mut owned = h.owned_views();
            let vi = rng.uniform(0, owned.len() as u64 - 1) as usize;
            let bi = rng.uniform(0, owned[vi].1.len() as u64 - 1) as usize;
            owned[vi].1[bi] ^= 0x5A;
            let corrupt_from = owned[vi].0; // replay can survive at most to here
            let mut db = h.fresh();
            replay_segments(&mut db, 0, &borrow_views(&owned), durable);
            let fp = db.fingerprint();
            assert!(
                fp == h.empty_fp || h.fingerprints.contains(&fp),
                "seed {seed}: corrupted replay produced a state no committed prefix has"
            );
            let ceiling = h.expected_at(owned[vi].0 + owned[vi].1.len() as u64);
            let floor_ok = fp == h.empty_fp
                || h.fingerprints.iter().position(|&f| f == fp).expect("prefix state")
                    <= h.fingerprints.iter().position(|&f| f == ceiling).unwrap_or(usize::MAX);
            assert!(
                floor_ok,
                "seed {seed}: replay advanced past the corrupted segment at {corrupt_from}"
            );
        }
    }
}

/// Property 3: a standby bootstrapped from a snapshot converges through
/// the truncated archive alone, applies exactly the post-snapshot
/// transactions, and a second pass is a no-op.
#[test]
fn rejoin_after_truncation_converges() {
    for seed in SEEDS {
        let mut h = random_history(seed);
        let mut rng = DetRng::new(seed ^ 0x0E01);
        let si = rng.uniform(0, h.boundaries.len() as u64 - 1) as usize;
        let snap = h.boundaries[si];
        let mut snap_db = h.fresh();
        recover(&mut snap_db, &h.stream[..snap as usize]);
        h.seg.truncate_below(snap);

        let mut replica = Replica::from_snapshot(0, snap_db, snap);
        let applied = replica.apply_archived(&h.seg.views());
        assert_eq!(
            applied as usize,
            h.boundaries.len() - (si + 1),
            "seed {seed}: exactly the post-snapshot transactions apply"
        );
        assert_eq!(replica.db.fingerprint(), h.primary.fingerprint(), "seed {seed}");
        assert_eq!(replica.cursor(), h.seg.end_lsn());
        assert_eq!(replica.apply_archived(&h.seg.views()), 0, "idempotent second pass");
    }
}

/// Release-mode smoke for `scripts/check.sh`: three seeds of the torn-tail
/// property, small and fast.
#[test]
fn smoke_torn_tail() {
    for seed in [0xB1, 0xB2, 0xB3] {
        let h = random_history(seed);
        let plan = FaultPlan { seed, ..FaultPlan::disabled() };
        let mut rng = plan.rng_for(site::SEGMENT_TAIL);
        let tear = rng.uniform(0, h.stream.len() as u64);
        let mut db = h.fresh();
        replay_segments(&mut db, 0, &h.seg.views(), tear);
        assert_eq!(db.fingerprint(), h.expected_at(tear), "seed {seed} tear {tear}");
    }
}
