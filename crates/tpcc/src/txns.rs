//! The five TPC-C transaction profiles over the memdb API.
//!
//! Implemented from the benchmark's transaction descriptions: NewOrder and
//! Payment carry the write load; OrderStatus, Delivery, and StockLevel add
//! the read and batch profiles. The standard mix is 45/43/4/4/4.

use crate::codec::{RowReader, RowWriter};
use crate::gen::{customer_id, item_id, random_last_name, NurandC};
use crate::schema::{key, Tables, TpccConfig};
use memdb::{keys, Database, TxnError, TxnOutcome};
use simkit::DetRng;

/// Which profile a draw selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Enter a new order (45%).
    NewOrder,
    /// Record a customer payment (43%).
    Payment,
    /// Query a customer's latest order (4%, read-only).
    OrderStatus,
    /// Deliver pending orders for a warehouse (4%).
    Delivery,
    /// Count low-stock items for recent orders (4%, read-only).
    StockLevel,
}

/// Per-kind execution counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixStats {
    /// NewOrder executions.
    pub new_order: u64,
    /// Payment executions.
    pub payment: u64,
    /// OrderStatus executions.
    pub order_status: u64,
    /// Delivery executions.
    pub delivery: u64,
    /// StockLevel executions.
    pub stock_level: u64,
    /// NewOrder user rollbacks (the 1% invalid-item case).
    pub rollbacks: u64,
}

/// A loaded TPC-C workload: schema handles + scale + NURand constants.
#[derive(Debug)]
pub struct TpccWorkload {
    /// Table handles.
    pub tables: Tables,
    /// Scale.
    pub config: TpccConfig,
    /// NURand constants drawn at load time.
    pub nurand: NurandC,
    /// Monotonic history sequence (history rows need unique keys).
    history_seq: u32,
    stats: MixStats,
}

impl simkit::Instrument for TpccWorkload {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let mut mix = out.scope("db.tpcc");
        mix.counter("new_order", self.stats.new_order);
        mix.counter("payment", self.stats.payment);
        mix.counter("order_status", self.stats.order_status);
        mix.counter("delivery", self.stats.delivery);
        mix.counter("stock_level", self.stats.stock_level);
        mix.counter("rollbacks", self.stats.rollbacks);
    }
}

impl TpccWorkload {
    /// Wrap a loaded schema.
    pub fn new(tables: Tables, config: TpccConfig, nurand: NurandC) -> Self {
        TpccWorkload { tables, config, nurand, history_seq: 0, stats: MixStats::default() }
    }

    /// Execution counters.
    pub fn stats(&self) -> MixStats {
        self.stats
    }

    /// Draw a profile per the standard mix.
    pub fn pick(&self, rng: &mut DetRng) -> TxnKind {
        let p = rng.uniform(1, 100);
        match p {
            1..=45 => TxnKind::NewOrder,
            46..=88 => TxnKind::Payment,
            89..=92 => TxnKind::OrderStatus,
            93..=96 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    /// Execute one transaction of the standard mix against `db`.
    pub fn execute(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        match self.pick(rng) {
            TxnKind::NewOrder => self.new_order(db, rng, now_ns),
            TxnKind::Payment => self.payment(db, rng, now_ns),
            TxnKind::OrderStatus => self.order_status(db, rng),
            TxnKind::Delivery => self.delivery(db, rng, now_ns),
            TxnKind::StockLevel => self.stock_level(db, rng),
        }
    }

    fn home_warehouse(&self, rng: &mut DetRng) -> u32 {
        rng.uniform(1, self.config.warehouses as u64) as u32
    }

    fn district(&self, rng: &mut DetRng) -> u32 {
        rng.uniform(1, self.config.districts as u64) as u32
    }

    /// NewOrder: order-entry with 5–15 lines; 1% roll back on an invalid
    /// item after doing the reads (the spec's intentional-abort case).
    pub fn new_order(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.new_order += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let c = customer_id(rng, &self.nurand, self.config.customers);
        let rollback = rng.chance(0.01);
        let ol_cnt = rng.uniform(5, 15) as u32;

        let mut ctx = db.begin();
        // Warehouse tax.
        let wrow = db
            .get(&mut ctx, t.warehouse, &key::warehouse(w))
            .ok_or_else(|| TxnError::NotFound(key::warehouse(w)))?;
        let mut wr = RowReader::new(&wrow);
        wr.skip(10);
        let w_tax = wr.u32();
        // District: tax + next_o_id (incremented).
        let drow = db
            .get(&mut ctx, t.district, &key::district(w, d))
            .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
        let mut dr = RowReader::new(&drow);
        let d_tax = dr.u32();
        let d_ytd = dr.money();
        let o_id = dr.u32();
        db.update(
            &mut ctx,
            t.district,
            key::district(w, d),
            RowWriter::new(32).u32(d_tax).money(d_ytd).u32(o_id + 1).finish(),
        );
        // Customer discount.
        let crow = db
            .get(&mut ctx, t.customer, &key::customer(w, d, c))
            .ok_or_else(|| TxnError::NotFound(key::customer(w, d, c)))?;
        let _ = crow;

        // Lines.
        let mut all_local = 1u32;
        let mut total = 0i64;
        for ol in 1..=ol_cnt {
            let i = if rollback && ol == ol_cnt {
                // Unused item id: triggers the intentional rollback.
                self.config.items + 1
            } else {
                item_id(rng, &self.nurand, self.config.items)
            };
            let Some(irow) = db.get(&mut ctx, t.item, &key::item(i)) else {
                self.stats.rollbacks += 1;
                return Err(TxnError::NotFound(key::item(i)));
            };
            let mut ir = RowReader::new(&irow);
            ir.skip(24);
            let price = ir.money();
            // 1% of lines are remote (supply warehouse differs).
            let supply_w = if self.config.warehouses > 1 && rng.chance(0.01) {
                all_local = 0;
                let mut o = self.home_warehouse(rng);
                while o == w {
                    o = self.home_warehouse(rng);
                }
                o
            } else {
                w
            };
            let qty = rng.uniform(1, 10) as u32;
            // Stock read + update.
            let srow = db
                .get(&mut ctx, t.stock, &key::stock(supply_w, i))
                .ok_or_else(|| TxnError::NotFound(key::stock(supply_w, i)))?;
            let mut sr = RowReader::new(&srow);
            let s_qty = sr.u32();
            let s_ytd = sr.u32();
            let s_ord = sr.u32();
            let s_rem = sr.u32();
            let dist_info = sr.str(24);
            let s_data = sr.str(50);
            let new_qty = if s_qty > qty + 10 { s_qty - qty } else { s_qty + 91 - qty };
            db.update(
                &mut ctx,
                t.stock,
                key::stock(supply_w, i),
                RowWriter::new(96)
                    .u32(new_qty)
                    .u32(s_ytd + qty)
                    .u32(s_ord + 1)
                    .u32(s_rem + if supply_w == w { 0 } else { 1 })
                    .str(&dist_info, 24)
                    .str(&s_data, 50)
                    .finish(),
            );
            let amount = price * qty as i64;
            total += amount;
            db.insert(
                &mut ctx,
                t.order_line,
                key::order_line(w, d, o_id, ol),
                RowWriter::new(64)
                    .u32(i)
                    .u32(supply_w)
                    .u64(0) // undelivered
                    .u32(qty)
                    .money(amount)
                    .str(&dist_info, 24)
                    .finish(),
            );
        }
        let _ = (w_tax, total);
        db.insert(
            &mut ctx,
            t.order,
            key::order(w, d, o_id),
            RowWriter::new(32).u32(c).u64(now_ns).u32(0).u32(ol_cnt).u32(all_local).finish(),
        );
        db.insert(&mut ctx, t.order_customer, key::order_customer(w, d, c, o_id), Vec::new());
        db.insert(&mut ctx, t.new_order, key::new_order(w, d, o_id), Vec::new());
        db.commit(ctx)
    }

    /// Resolve a customer by id (60%) or last name (40%, median match).
    fn select_customer(
        &self,
        db: &Database,
        ctx: &mut memdb::TxnCtx,
        rng: &mut DetRng,
        w: u32,
        d: u32,
    ) -> Result<u32, TxnError> {
        if rng.chance(0.60) {
            Ok(customer_id(rng, &self.nurand, self.config.customers))
        } else {
            let last = random_last_name(rng, &self.nurand);
            let from = key::customer_name_prefix(w, d, &last);
            let to = keys::successor(&from);
            let matches = db.scan(ctx, self.tables.customer_name, &from, &to, 100);
            if matches.is_empty() {
                // Scaled-down loads may miss a name; fall back to an id.
                return Ok(customer_id(rng, &self.nurand, self.config.customers));
            }
            let (_, row) = &matches[matches.len() / 2];
            Ok(u32::from_le_bytes(row[..4].try_into().expect("c_id payload")))
        }
    }

    /// Payment: cash a payment against warehouse/district/customer ytd and
    /// insert a history row.
    pub fn payment(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.payment += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let amount = rng.uniform_i64(100, 500_000);
        let mut ctx = db.begin();

        // 85% home district, 15% remote customer.
        let (cw, cd) = if self.config.warehouses > 1 && rng.chance(0.15) {
            let mut o = self.home_warehouse(rng);
            while o == w {
                o = self.home_warehouse(rng);
            }
            (o, self.district(rng))
        } else {
            (w, d)
        };
        let c = self.select_customer(db, &mut ctx, rng, cw, cd)?;

        // Warehouse ytd.
        let wrow = db
            .get(&mut ctx, t.warehouse, &key::warehouse(w))
            .ok_or_else(|| TxnError::NotFound(key::warehouse(w)))?;
        let mut wr = RowReader::new(&wrow);
        let name = wr.str(10);
        let tax = wr.u32();
        let ytd = wr.money();
        db.update(
            &mut ctx,
            t.warehouse,
            key::warehouse(w),
            RowWriter::new(48).str(&name, 10).u32(tax).money(ytd + amount).finish(),
        );
        // District ytd.
        let drow = db
            .get(&mut ctx, t.district, &key::district(w, d))
            .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
        let mut dr = RowReader::new(&drow);
        let d_tax = dr.u32();
        let d_ytd = dr.money();
        let next_o = dr.u32();
        db.update(
            &mut ctx,
            t.district,
            key::district(w, d),
            RowWriter::new(32).u32(d_tax).money(d_ytd + amount).u32(next_o).finish(),
        );
        // Customer balance / ytd / counters.
        let ckey = key::customer(cw, cd, c);
        let crow =
            db.get(&mut ctx, t.customer, &ckey).ok_or_else(|| TxnError::NotFound(ckey.clone()))?;
        let mut cr = RowReader::new(&crow);
        let first = cr.str(16);
        let middle = cr.str(2);
        let last = cr.str(16);
        let balance = cr.money();
        let ytd_pay = cr.money();
        let pay_cnt = cr.u32();
        let del_cnt = cr.u32();
        let credit = cr.str(2);
        let discount = cr.u32();
        let data = cr.str(100);
        db.update(
            &mut ctx,
            t.customer,
            ckey,
            RowWriter::new(192)
                .str(&first, 16)
                .str(&middle, 2)
                .str(&last, 16)
                .money(balance - amount)
                .money(ytd_pay + amount)
                .u32(pay_cnt + 1)
                .u32(del_cnt)
                .str(&credit, 2)
                .u32(discount)
                .str(&data, 100)
                .finish(),
        );
        // History.
        self.history_seq += 1;
        db.insert(
            &mut ctx,
            t.history,
            key::history(cw, cd, c, self.history_seq),
            RowWriter::new(48).money(amount).u64(now_ns).str(&name, 24).finish(),
        );
        db.commit(ctx)
    }

    /// OrderStatus: the customer's latest order and its lines (read-only).
    pub fn order_status(&mut self, db: &mut Database, rng: &mut DetRng) -> TxnOutcome {
        self.stats.order_status += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let mut ctx = db.begin();
        let c = self.select_customer(db, &mut ctx, rng, w, d)?;
        let from = key::order_customer(w, d, c, 0);
        let to = key::order_customer(w, d, c, u32::MAX);
        if let Some((okey, _)) = db.last_in_range(&mut ctx, t.order_customer, &from, &to) {
            // Decode o_id from the tail of the index key.
            let o_id = u32::from_be_bytes(okey[okey.len() - 4..].try_into().expect("o_id suffix"));
            let lfrom = key::order_line(w, d, o_id, 0);
            let lto = key::order_line(w, d, o_id, u32::MAX);
            let _lines = db.scan(&mut ctx, t.order_line, &lfrom, &lto, 20);
        }
        db.commit(ctx)
    }

    /// Delivery: for each district, deliver the oldest undelivered order.
    pub fn delivery(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.delivery += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let carrier = rng.uniform(1, 10) as u32;
        let mut ctx = db.begin();
        for d in 1..=self.config.districts {
            let from = key::new_order(w, d, 0);
            let to = key::new_order(w, d, u32::MAX);
            let Some((nokey, _)) = db.scan(&mut ctx, t.new_order, &from, &to, 1).into_iter().next()
            else {
                continue; // district fully delivered
            };
            let o_id =
                u32::from_be_bytes(nokey[nokey.len() - 4..].try_into().expect("o_id suffix"));
            db.delete(&mut ctx, t.new_order, nokey);
            // Order: set carrier.
            let okey = key::order(w, d, o_id);
            let orow =
                db.get(&mut ctx, t.order, &okey).ok_or_else(|| TxnError::NotFound(okey.clone()))?;
            let mut or = RowReader::new(&orow);
            let c = or.u32();
            let entry = or.u64();
            let _old_carrier = or.u32();
            let ol_cnt = or.u32();
            let all_local = or.u32();
            db.update(
                &mut ctx,
                t.order,
                okey,
                RowWriter::new(32)
                    .u32(c)
                    .u64(entry)
                    .u32(carrier)
                    .u32(ol_cnt)
                    .u32(all_local)
                    .finish(),
            );
            // Order lines: stamp delivery date, sum amounts.
            let mut total = 0i64;
            for ol in 1..=ol_cnt {
                let lkey = key::order_line(w, d, o_id, ol);
                let Some(lrow) = db.get(&mut ctx, t.order_line, &lkey) else { continue };
                let mut lr = RowReader::new(&lrow);
                let i = lr.u32();
                let sw = lr.u32();
                let _date = lr.u64();
                let qty = lr.u32();
                let amount = lr.money();
                let dist = lr.str(24);
                total += amount;
                db.update(
                    &mut ctx,
                    t.order_line,
                    lkey,
                    RowWriter::new(64)
                        .u32(i)
                        .u32(sw)
                        .u64(now_ns)
                        .u32(qty)
                        .money(amount)
                        .str(&dist, 24)
                        .finish(),
                );
            }
            // Customer: balance += total, delivery_cnt += 1.
            let ckey = key::customer(w, d, c);
            let crow = db
                .get(&mut ctx, t.customer, &ckey)
                .ok_or_else(|| TxnError::NotFound(ckey.clone()))?;
            let mut cr = RowReader::new(&crow);
            let first = cr.str(16);
            let middle = cr.str(2);
            let last = cr.str(16);
            let balance = cr.money();
            let ytd_pay = cr.money();
            let pay_cnt = cr.u32();
            let del_cnt = cr.u32();
            let credit = cr.str(2);
            let discount = cr.u32();
            let data = cr.str(100);
            db.update(
                &mut ctx,
                t.customer,
                ckey,
                RowWriter::new(192)
                    .str(&first, 16)
                    .str(&middle, 2)
                    .str(&last, 16)
                    .money(balance + total)
                    .money(ytd_pay)
                    .u32(pay_cnt)
                    .u32(del_cnt + 1)
                    .str(&credit, 2)
                    .u32(discount)
                    .str(&data, 100)
                    .finish(),
            );
        }
        db.commit(ctx)
    }

    /// StockLevel: items under a threshold among the district's last 20
    /// orders (read-only).
    pub fn stock_level(&mut self, db: &mut Database, rng: &mut DetRng) -> TxnOutcome {
        self.stats.stock_level += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let threshold = rng.uniform(10, 20) as u32;
        let mut ctx = db.begin();
        let drow = db
            .get(&mut ctx, t.district, &key::district(w, d))
            .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
        let mut dr = RowReader::new(&drow);
        dr.skip(12);
        let next_o = dr.u32();
        let from_o = next_o.saturating_sub(20);
        let lfrom = key::order_line(w, d, from_o, 0);
        let lto = key::order_line(w, d, next_o, 0);
        let lines = db.scan(&mut ctx, t.order_line, &lfrom, &lto, 400);
        let mut low = std::collections::HashSet::new();
        for (_k, lrow) in lines {
            let mut lr = RowReader::new(&lrow);
            let i = lr.u32();
            if low.contains(&i) {
                continue;
            }
            if let Some(srow) = db.get(&mut ctx, t.stock, &key::stock(w, i)) {
                let mut sr = RowReader::new(&srow);
                if sr.u32() < threshold {
                    low.insert(i);
                }
            }
        }
        db.commit(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::NurandC;
    use crate::schema::load;

    fn workload() -> (Database, TpccWorkload, DetRng) {
        let mut db = Database::new();
        let mut rng = DetRng::new(7);
        let c = NurandC::draw(&mut rng);
        let cfg = TpccConfig::small();
        let tables = load(&mut db, &cfg, &mut rng, &c);
        (db, TpccWorkload::new(tables, cfg, c), rng)
    }

    #[test]
    fn new_order_advances_district_counter_and_creates_rows() {
        let (mut db, mut w, mut rng) = workload();
        let orders_before = db.table(w.tables.order).unwrap().len();
        let mut committed = 0;
        for _ in 0..20 {
            if w.new_order(&mut db, &mut rng, 0).is_ok() {
                committed += 1;
            }
        }
        assert!(committed >= 18, "at most the 1% rollback rate plus noise");
        assert_eq!(db.table(w.tables.order).unwrap().len(), orders_before + committed);
        assert!(!db.table(w.tables.new_order).unwrap().is_empty());
    }

    #[test]
    fn new_order_rollback_rate_is_about_one_percent() {
        let (mut db, mut w, mut rng) = workload();
        for _ in 0..2000 {
            let _ = w.new_order(&mut db, &mut rng, 0);
        }
        let r = w.stats().rollbacks;
        assert!((5..=50).contains(&r), "rollbacks {r} out of 2000");
    }

    #[test]
    fn payment_moves_money() {
        let (mut db, mut w, mut rng) = workload();
        let hist_before = db.table(w.tables.history).unwrap().len();
        for _ in 0..10 {
            w.payment(&mut db, &mut rng, 0).unwrap();
        }
        assert_eq!(db.table(w.tables.history).unwrap().len(), hist_before + 10);
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let (mut db, mut w, mut rng) = workload();
        let pending_before = db.table(w.tables.new_order).unwrap().len();
        assert!(pending_before > 0);
        w.delivery(&mut db, &mut rng, 123).unwrap();
        let pending_after = db.table(w.tables.new_order).unwrap().len();
        assert!(pending_after < pending_before);
    }

    #[test]
    fn read_only_profiles_commit_without_writes() {
        let (mut db, mut w, mut rng) = workload();
        let fp = db.fingerprint();
        let recs = w.order_status(&mut db, &mut rng).unwrap();
        assert_eq!(recs.len(), 1, "commit marker only");
        let recs2 = w.stock_level(&mut db, &mut rng).unwrap();
        assert_eq!(recs2.len(), 1);
        assert_eq!(db.fingerprint(), fp, "read-only profiles leave state intact");
    }

    #[test]
    fn mix_is_roughly_standard() {
        let (mut db, mut w, mut rng) = workload();
        for _ in 0..3000 {
            let _ = w.execute(&mut db, &mut rng, 0);
        }
        let s = w.stats();
        let total = (s.new_order + s.payment + s.order_status + s.delivery + s.stock_level) as f64;
        assert!((s.new_order as f64 / total - 0.45).abs() < 0.05);
        assert!((s.payment as f64 / total - 0.43).abs() < 0.05);
        assert!((s.delivery as f64 / total - 0.04).abs() < 0.02);
    }

    #[test]
    fn log_record_sizes_are_realistic() {
        // The paper cites OLTP log records well under 20 KiB; our NewOrder
        // emits a few hundred bytes to a few KiB.
        let (mut db, mut w, mut rng) = workload();
        let mut sizes = Vec::new();
        for _ in 0..50 {
            if let Ok(recs) = w.new_order(&mut db, &mut rng, 0) {
                sizes.push(recs.iter().map(|r| r.encoded_len()).sum::<usize>());
            }
        }
        let avg = sizes.iter().sum::<usize>() / sizes.len();
        assert!(avg > 300 && avg < 20_000, "avg NewOrder log bytes {avg}");
    }
}
