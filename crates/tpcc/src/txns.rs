//! The five TPC-C transaction profiles over the memdb API.
//!
//! Implemented from the benchmark's transaction descriptions: NewOrder and
//! Payment carry the write load; OrderStatus, Delivery, and StockLevel add
//! the read and batch profiles. The standard mix is 45/43/4/4/4.

use crate::codec::{get_money, get_u32, put_money, put_u32, put_u64, RowBuf, RowReader};
use crate::gen::{customer_id, item_id, random_last_name, NurandC};
use crate::schema::{key, Tables, TpccConfig};
use memdb::{keys, Database, Key, Row, TxnError, TxnOutcome};
use simkit::DetRng;

/// Which profile a draw selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Enter a new order (45%).
    NewOrder,
    /// Record a customer payment (43%).
    Payment,
    /// Query a customer's latest order (4%, read-only).
    OrderStatus,
    /// Deliver pending orders for a warehouse (4%).
    Delivery,
    /// Count low-stock items for recent orders (4%, read-only).
    StockLevel,
}

/// Per-kind execution counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixStats {
    /// NewOrder executions.
    pub new_order: u64,
    /// Payment executions.
    pub payment: u64,
    /// OrderStatus executions.
    pub order_status: u64,
    /// Delivery executions.
    pub delivery: u64,
    /// StockLevel executions.
    pub stock_level: u64,
    /// NewOrder user rollbacks (the 1% invalid-item case).
    pub rollbacks: u64,
}

/// A loaded TPC-C workload: schema handles + scale + NURand constants.
#[derive(Debug)]
pub struct TpccWorkload {
    /// Table handles.
    pub tables: Tables,
    /// Scale.
    pub config: TpccConfig,
    /// NURand constants drawn at load time.
    pub nurand: NurandC,
    /// Monotonic history sequence (history rows need unique keys).
    history_seq: u32,
    stats: MixStats,
    /// Reusable row scratch: every written row is staged here and frozen
    /// into one refcounted image, so steady state re-allocates nothing.
    row_buf: Vec<u8>,
    /// StockLevel scratch: item ids of the scanned order lines.
    line_items: Vec<u32>,
    /// StockLevel scratch: distinct low-stock item ids seen so far.
    low_items: Vec<u32>,
}

impl simkit::Instrument for TpccWorkload {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let mut mix = out.scope("db.tpcc");
        mix.counter("new_order", self.stats.new_order);
        mix.counter("payment", self.stats.payment);
        mix.counter("order_status", self.stats.order_status);
        mix.counter("delivery", self.stats.delivery);
        mix.counter("stock_level", self.stats.stock_level);
        mix.counter("rollbacks", self.stats.rollbacks);
    }
}

impl TpccWorkload {
    /// Wrap a loaded schema.
    pub fn new(tables: Tables, config: TpccConfig, nurand: NurandC) -> Self {
        TpccWorkload {
            tables,
            config,
            nurand,
            history_seq: 0,
            stats: MixStats::default(),
            row_buf: Vec::new(),
            line_items: Vec::new(),
            low_items: Vec::new(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> MixStats {
        self.stats
    }

    /// Draw a profile per the standard mix.
    pub fn pick(&self, rng: &mut DetRng) -> TxnKind {
        let p = rng.uniform(1, 100);
        match p {
            1..=45 => TxnKind::NewOrder,
            46..=88 => TxnKind::Payment,
            89..=92 => TxnKind::OrderStatus,
            93..=96 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    /// Execute one transaction of the standard mix against `db`.
    pub fn execute(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        match self.pick(rng) {
            TxnKind::NewOrder => self.new_order(db, rng, now_ns),
            TxnKind::Payment => self.payment(db, rng, now_ns),
            TxnKind::OrderStatus => self.order_status(db, rng),
            TxnKind::Delivery => self.delivery(db, rng, now_ns),
            TxnKind::StockLevel => self.stock_level(db, rng),
        }
    }

    fn home_warehouse(&self, rng: &mut DetRng) -> u32 {
        rng.uniform(1, self.config.warehouses as u64) as u32
    }

    fn district(&self, rng: &mut DetRng) -> u32 {
        rng.uniform(1, self.config.districts as u64) as u32
    }

    /// NewOrder: order-entry with 5–15 lines; 1% roll back on an invalid
    /// item after doing the reads (the spec's intentional-abort case).
    pub fn new_order(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.new_order += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let c = customer_id(rng, &self.nurand, self.config.customers);
        let rollback = rng.chance(0.01);
        let ol_cnt = rng.uniform(5, 15) as u32;

        let mut ctx = db.begin();
        // Warehouse tax.
        let w_tax = {
            let wrow = db
                .get(&mut ctx, t.warehouse, &key::warehouse(w))
                .ok_or_else(|| TxnError::NotFound(key::warehouse(w)))?;
            let mut wr = RowReader::new(wrow);
            wr.skip(10);
            wr.u32()
        };
        // District: tax + next_o_id (incremented).
        let (d_tax, d_ytd, o_id) = {
            let drow = db
                .get(&mut ctx, t.district, &key::district(w, d))
                .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
            let mut dr = RowReader::new(drow);
            (dr.u32(), dr.money(), dr.u32())
        };
        db.update(
            &mut ctx,
            t.district,
            key::district(w, d),
            RowBuf::new(&mut self.row_buf).u32(d_tax).money(d_ytd).u32(o_id + 1).finish(),
        );
        // Customer discount.
        let crow = db
            .get(&mut ctx, t.customer, &key::customer(w, d, c))
            .ok_or_else(|| TxnError::NotFound(key::customer(w, d, c)))?;
        let _ = crow;

        // Lines.
        let mut all_local = 1u32;
        let mut total = 0i64;
        for ol in 1..=ol_cnt {
            let i = if rollback && ol == ol_cnt {
                // Unused item id: triggers the intentional rollback.
                self.config.items + 1
            } else {
                item_id(rng, &self.nurand, self.config.items)
            };
            let price = match db.get(&mut ctx, t.item, &key::item(i)) {
                Some(irow) => {
                    let mut ir = RowReader::new(irow);
                    ir.skip(24);
                    ir.money()
                }
                None => {
                    self.stats.rollbacks += 1;
                    db.rollback(ctx);
                    return Err(TxnError::NotFound(key::item(i)));
                }
            };
            // 1% of lines are remote (supply warehouse differs).
            let supply_w = if self.config.warehouses > 1 && rng.chance(0.01) {
                all_local = 0;
                let mut o = self.home_warehouse(rng);
                while o == w {
                    o = self.home_warehouse(rng);
                }
                o
            } else {
                w
            };
            let qty = rng.uniform(1, 10) as u32;
            // Stock read + in-place update: copy the image once, patch the
            // four counters, keep dist_info for the order line.
            let mut dist_info = [0u8; 24];
            let s_qty = {
                let srow = db
                    .get(&mut ctx, t.stock, &key::stock(supply_w, i))
                    .ok_or_else(|| TxnError::NotFound(key::stock(supply_w, i)))?;
                let mut sr = RowReader::new(srow);
                let s_qty = sr.u32();
                sr.skip(12);
                dist_info.copy_from_slice(sr.raw(24));
                self.row_buf.clear();
                self.row_buf.extend_from_slice(srow);
                s_qty
            };
            let new_qty = if s_qty > qty + 10 { s_qty - qty } else { s_qty + 91 - qty };
            let s_ytd = get_u32(&self.row_buf, 4) + qty;
            let s_ord = get_u32(&self.row_buf, 8) + 1;
            let s_rem = get_u32(&self.row_buf, 12) + if supply_w == w { 0 } else { 1 };
            put_u32(&mut self.row_buf, 0, new_qty);
            put_u32(&mut self.row_buf, 4, s_ytd);
            put_u32(&mut self.row_buf, 8, s_ord);
            put_u32(&mut self.row_buf, 12, s_rem);
            db.update(
                &mut ctx,
                t.stock,
                key::stock(supply_w, i),
                Row::copy_from_slice(&self.row_buf),
            );
            let amount = price * qty as i64;
            total += amount;
            db.insert(
                &mut ctx,
                t.order_line,
                key::order_line(w, d, o_id, ol),
                RowBuf::new(&mut self.row_buf)
                    .u32(i)
                    .u32(supply_w)
                    .u64(0) // undelivered
                    .u32(qty)
                    .money(amount)
                    .bytes(&dist_info, 24)
                    .finish(),
            );
        }
        let _ = (w_tax, total);
        db.insert(
            &mut ctx,
            t.order,
            key::order(w, d, o_id),
            RowBuf::new(&mut self.row_buf)
                .u32(c)
                .u64(now_ns)
                .u32(0)
                .u32(ol_cnt)
                .u32(all_local)
                .finish(),
        );
        db.insert(&mut ctx, t.order_customer, key::order_customer(w, d, c, o_id), Row::new());
        db.insert(&mut ctx, t.new_order, key::new_order(w, d, o_id), Row::new());
        db.commit(ctx)
    }

    /// Resolve a customer by id (60%) or last name (40%, median match).
    fn select_customer(
        &self,
        db: &Database,
        ctx: &mut memdb::TxnCtx,
        rng: &mut DetRng,
        w: u32,
        d: u32,
    ) -> Result<u32, TxnError> {
        if rng.chance(0.60) {
            Ok(customer_id(rng, &self.nurand, self.config.customers))
        } else {
            let last = random_last_name(rng, &self.nurand);
            let from = key::customer_name_prefix(w, d, &last);
            let to = keys::successor(&from);
            // Visit the name index without materializing the matches; the
            // median rule only needs the customer ids.
            let mut ids = [0u32; 100];
            let mut n = 0usize;
            db.scan_visit(ctx, self.tables.customer_name, &from, &to, 100, |_k, row| {
                ids[n] = u32::from_le_bytes(row[..4].try_into().expect("c_id payload"));
                n += 1;
            });
            if n == 0 {
                // Scaled-down loads may miss a name; fall back to an id.
                return Ok(customer_id(rng, &self.nurand, self.config.customers));
            }
            Ok(ids[n / 2])
        }
    }

    /// Payment: cash a payment against warehouse/district/customer ytd and
    /// insert a history row.
    pub fn payment(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.payment += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let amount = rng.uniform_i64(100, 500_000);
        let mut ctx = db.begin();

        // 85% home district, 15% remote customer.
        let (cw, cd) = if self.config.warehouses > 1 && rng.chance(0.15) {
            let mut o = self.home_warehouse(rng);
            while o == w {
                o = self.home_warehouse(rng);
            }
            (o, self.district(rng))
        } else {
            (w, d)
        };
        let c = self.select_customer(db, &mut ctx, rng, cw, cd)?;

        // Warehouse ytd. The name's raw bytes ride along on the stack for
        // the history row.
        let mut wname = [0u8; 10];
        let (tax, ytd) = {
            let wrow = db
                .get(&mut ctx, t.warehouse, &key::warehouse(w))
                .ok_or_else(|| TxnError::NotFound(key::warehouse(w)))?;
            let mut wr = RowReader::new(wrow);
            wname.copy_from_slice(wr.raw(10));
            (wr.u32(), wr.money())
        };
        db.update(
            &mut ctx,
            t.warehouse,
            key::warehouse(w),
            RowBuf::new(&mut self.row_buf).bytes(&wname, 10).u32(tax).money(ytd + amount).finish(),
        );
        // District ytd.
        let (d_tax, d_ytd, next_o) = {
            let drow = db
                .get(&mut ctx, t.district, &key::district(w, d))
                .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
            let mut dr = RowReader::new(drow);
            (dr.u32(), dr.money(), dr.u32())
        };
        db.update(
            &mut ctx,
            t.district,
            key::district(w, d),
            RowBuf::new(&mut self.row_buf).u32(d_tax).money(d_ytd + amount).u32(next_o).finish(),
        );
        // Customer balance / ytd / counters: copy the image once and patch
        // the three fields in place (the rest passes through byte-exact).
        let ckey = key::customer(cw, cd, c);
        {
            let crow = db
                .get(&mut ctx, t.customer, &ckey)
                .ok_or_else(|| TxnError::NotFound(ckey.clone()))?;
            self.row_buf.clear();
            self.row_buf.extend_from_slice(crow);
        }
        let balance = get_money(&self.row_buf, 34) - amount;
        let ytd_pay = get_money(&self.row_buf, 42) + amount;
        let pay_cnt = get_u32(&self.row_buf, 50) + 1;
        put_money(&mut self.row_buf, 34, balance);
        put_money(&mut self.row_buf, 42, ytd_pay);
        put_u32(&mut self.row_buf, 50, pay_cnt);
        db.update(&mut ctx, t.customer, ckey, Row::copy_from_slice(&self.row_buf));
        // History.
        self.history_seq += 1;
        db.insert(
            &mut ctx,
            t.history,
            key::history(cw, cd, c, self.history_seq),
            RowBuf::new(&mut self.row_buf).money(amount).u64(now_ns).bytes(&wname, 24).finish(),
        );
        db.commit(ctx)
    }

    /// OrderStatus: the customer's latest order and its lines (read-only).
    pub fn order_status(&mut self, db: &mut Database, rng: &mut DetRng) -> TxnOutcome {
        self.stats.order_status += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let mut ctx = db.begin();
        let c = self.select_customer(db, &mut ctx, rng, w, d)?;
        let from = key::order_customer(w, d, c, 0);
        let to = key::order_customer(w, d, c, u32::MAX);
        // Decode o_id from the tail of the index key; the borrow ends there.
        let latest = db.last_in_range(&mut ctx, t.order_customer, &from, &to).map(|(okey, _)| {
            u32::from_be_bytes(okey[okey.len() - 4..].try_into().expect("o_id suffix"))
        });
        if let Some(o_id) = latest {
            let lfrom = key::order_line(w, d, o_id, 0);
            let lto = key::order_line(w, d, o_id, u32::MAX);
            db.scan_visit(&mut ctx, t.order_line, &lfrom, &lto, 20, |_k, _row| {});
        }
        db.commit(ctx)
    }

    /// Delivery: for each district, deliver the oldest undelivered order.
    pub fn delivery(&mut self, db: &mut Database, rng: &mut DetRng, now_ns: u64) -> TxnOutcome {
        self.stats.delivery += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let carrier = rng.uniform(1, 10) as u32;
        let mut ctx = db.begin();
        for d in 1..=self.config.districts {
            let from = key::new_order(w, d, 0);
            let to = key::new_order(w, d, u32::MAX);
            // Oldest undelivered order; the key is copied out (inline, no
            // heap) so the borrow ends before the delete is buffered.
            let Some((o_id, nokey)) =
                db.first_in_range(&mut ctx, t.new_order, &from, &to).map(|(nokey, _)| {
                    let o_id = u32::from_be_bytes(
                        nokey[nokey.len() - 4..].try_into().expect("o_id suffix"),
                    );
                    (o_id, Key::from_slice(nokey))
                })
            else {
                continue; // district fully delivered
            };
            db.delete(&mut ctx, t.new_order, nokey);
            // Order: copy the image, patch the carrier field.
            let okey = key::order(w, d, o_id);
            {
                let orow = db
                    .get(&mut ctx, t.order, &okey)
                    .ok_or_else(|| TxnError::NotFound(okey.clone()))?;
                self.row_buf.clear();
                self.row_buf.extend_from_slice(orow);
            }
            let c = get_u32(&self.row_buf, 0);
            let ol_cnt = get_u32(&self.row_buf, 16);
            put_u32(&mut self.row_buf, 12, carrier);
            db.update(&mut ctx, t.order, okey, Row::copy_from_slice(&self.row_buf));
            // Order lines: stamp delivery date, sum amounts.
            let mut total = 0i64;
            for ol in 1..=ol_cnt {
                let lkey = key::order_line(w, d, o_id, ol);
                {
                    let Some(lrow) = db.get(&mut ctx, t.order_line, &lkey) else { continue };
                    self.row_buf.clear();
                    self.row_buf.extend_from_slice(lrow);
                }
                total += get_money(&self.row_buf, 20);
                put_u64(&mut self.row_buf, 8, now_ns);
                db.update(&mut ctx, t.order_line, lkey, Row::copy_from_slice(&self.row_buf));
            }
            // Customer: balance += total, delivery_cnt += 1.
            let ckey = key::customer(w, d, c);
            {
                let crow = db
                    .get(&mut ctx, t.customer, &ckey)
                    .ok_or_else(|| TxnError::NotFound(ckey.clone()))?;
                self.row_buf.clear();
                self.row_buf.extend_from_slice(crow);
            }
            let balance = get_money(&self.row_buf, 34) + total;
            let del_cnt = get_u32(&self.row_buf, 54) + 1;
            put_money(&mut self.row_buf, 34, balance);
            put_u32(&mut self.row_buf, 54, del_cnt);
            db.update(&mut ctx, t.customer, ckey, Row::copy_from_slice(&self.row_buf));
        }
        db.commit(ctx)
    }

    /// StockLevel: items under a threshold among the district's last 20
    /// orders (read-only).
    pub fn stock_level(&mut self, db: &mut Database, rng: &mut DetRng) -> TxnOutcome {
        self.stats.stock_level += 1;
        let t = self.tables;
        let w = self.home_warehouse(rng);
        let d = self.district(rng);
        let threshold = rng.uniform(10, 20) as u32;
        let mut ctx = db.begin();
        let next_o = {
            let drow = db
                .get(&mut ctx, t.district, &key::district(w, d))
                .ok_or_else(|| TxnError::NotFound(key::district(w, d)))?;
            get_u32(drow, 12)
        };
        let from_o = next_o.saturating_sub(20);
        let lfrom = key::order_line(w, d, from_o, 0);
        let lto = key::order_line(w, d, next_o, 0);
        // Collect the line item ids into reusable scratch, then probe stock.
        // Dedup is a linear scan over the low list — it stays tiny (distinct
        // low-stock items), and it spares the per-call HashSet.
        self.line_items.clear();
        {
            let items = &mut self.line_items;
            db.scan_visit(&mut ctx, t.order_line, &lfrom, &lto, 400, |_k, lrow| {
                items.push(get_u32(lrow, 0));
            });
        }
        self.low_items.clear();
        for idx in 0..self.line_items.len() {
            let i = self.line_items[idx];
            if self.low_items.contains(&i) {
                continue;
            }
            if let Some(srow) = db.get(&mut ctx, t.stock, &key::stock(w, i)) {
                if get_u32(srow, 0) < threshold {
                    self.low_items.push(i);
                }
            }
        }
        db.commit(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::NurandC;
    use crate::schema::load;

    fn workload() -> (Database, TpccWorkload, DetRng) {
        let mut db = Database::new();
        let mut rng = DetRng::new(7);
        let c = NurandC::draw(&mut rng);
        let cfg = TpccConfig::small();
        let tables = load(&mut db, &cfg, &mut rng, &c);
        (db, TpccWorkload::new(tables, cfg, c), rng)
    }

    #[test]
    fn new_order_advances_district_counter_and_creates_rows() {
        let (mut db, mut w, mut rng) = workload();
        let orders_before = db.table(w.tables.order).unwrap().len();
        let mut committed = 0;
        for _ in 0..20 {
            if w.new_order(&mut db, &mut rng, 0).is_ok() {
                committed += 1;
            }
        }
        assert!(committed >= 18, "at most the 1% rollback rate plus noise");
        assert_eq!(db.table(w.tables.order).unwrap().len(), orders_before + committed);
        assert!(!db.table(w.tables.new_order).unwrap().is_empty());
    }

    #[test]
    fn new_order_rollback_rate_is_about_one_percent() {
        let (mut db, mut w, mut rng) = workload();
        for _ in 0..2000 {
            let _ = w.new_order(&mut db, &mut rng, 0);
        }
        let r = w.stats().rollbacks;
        assert!((5..=50).contains(&r), "rollbacks {r} out of 2000");
    }

    #[test]
    fn payment_moves_money() {
        let (mut db, mut w, mut rng) = workload();
        let hist_before = db.table(w.tables.history).unwrap().len();
        for _ in 0..10 {
            w.payment(&mut db, &mut rng, 0).unwrap();
        }
        assert_eq!(db.table(w.tables.history).unwrap().len(), hist_before + 10);
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let (mut db, mut w, mut rng) = workload();
        let pending_before = db.table(w.tables.new_order).unwrap().len();
        assert!(pending_before > 0);
        w.delivery(&mut db, &mut rng, 123).unwrap();
        let pending_after = db.table(w.tables.new_order).unwrap().len();
        assert!(pending_after < pending_before);
    }

    #[test]
    fn read_only_profiles_commit_without_writes() {
        let (mut db, mut w, mut rng) = workload();
        let fp = db.fingerprint();
        let recs = w.order_status(&mut db, &mut rng).unwrap();
        assert_eq!(recs.len(), 1, "commit marker only");
        let recs2 = w.stock_level(&mut db, &mut rng).unwrap();
        assert_eq!(recs2.len(), 1);
        assert_eq!(db.fingerprint(), fp, "read-only profiles leave state intact");
    }

    #[test]
    fn mix_is_roughly_standard() {
        let (mut db, mut w, mut rng) = workload();
        for _ in 0..3000 {
            let _ = w.execute(&mut db, &mut rng, 0);
        }
        let s = w.stats();
        let total = (s.new_order + s.payment + s.order_status + s.delivery + s.stock_level) as f64;
        assert!((s.new_order as f64 / total - 0.45).abs() < 0.05);
        assert!((s.payment as f64 / total - 0.43).abs() < 0.05);
        assert!((s.delivery as f64 / total - 0.04).abs() < 0.02);
    }

    #[test]
    fn log_record_sizes_are_realistic() {
        // The paper cites OLTP log records well under 20 KiB; our NewOrder
        // emits a few hundred bytes to a few KiB.
        let (mut db, mut w, mut rng) = workload();
        let mut sizes = Vec::new();
        for _ in 0..50 {
            if let Ok(recs) = w.new_order(&mut db, &mut rng, 0) {
                sizes.push(recs.iter().map(|r| r.encoded_len()).sum::<usize>());
            }
        }
        let avg = sizes.iter().sum::<usize>() / sizes.len();
        assert!(avg > 300 && avg < 20_000, "avg NewOrder log bytes {avg}");
    }
}
