//! # tpcc — the TPC-C workload over memdb
//!
//! The transactional workload the paper drives its evaluation with ("we run
//! the TPC-C workload with 16 warehouses", §6): schema + loader, the spec's
//! NURand skew and name generators, and the five transaction profiles in
//! the standard 45/43/4/4/4 mix.
//!
//! Scale note: [`TpccConfig::paper`] keeps the paper's 16 warehouses but
//! scales item/customer cardinality down 10× — NURand preserves the access
//! skew, and the log path (the system under test) sees the same record
//! sizes and arrival pattern.

#![warn(missing_docs)]

pub mod codec;
pub mod gen;
pub mod schema;
pub mod txns;

pub use codec::{RowReader, RowWriter};
pub use gen::{last_name, nurand, NurandC};
pub use schema::{key, load, Tables, TpccConfig, TABLE_NAMES};
pub use txns::{MixStats, TpccWorkload, TxnKind};

use memdb::Database;
use simkit::DetRng;

/// Build a loaded TPC-C database + workload in one call.
pub fn setup(cfg: TpccConfig, seed: u64) -> (Database, TpccWorkload, DetRng) {
    let mut db = Database::new();
    let mut rng = DetRng::new(seed);
    let c = NurandC::draw(&mut rng);
    let tables = load(&mut db, &cfg, &mut rng, &c);
    (db, TpccWorkload::new(tables, cfg, c), rng)
}

#[cfg(test)]
mod crate_tests {
    use super::*;
    use memdb::{run_workload, NoLog, RunnerConfig, WalConfig, WalManager};
    use simkit::SimDuration;

    /// End-to-end: the TPC-C mix runs under the group-commit runner.
    #[test]
    fn tpcc_under_the_runner() {
        let (mut db, mut workload, _rng) = setup(TpccConfig::small(), 99);
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        let report = run_workload(
            &mut db,
            &mut wal,
            RunnerConfig {
                workers: 4,
                duration: SimDuration::from_millis(30),
                ..RunnerConfig::default()
            },
            |db, rng, _w| workload.execute(db, rng, 0),
        );
        assert!(report.committed > 500, "committed {}", report.committed);
        // Rollbacks + occasional validation conflicts only.
        assert!(
            (report.aborted as f64) < (report.committed as f64) * 0.05,
            "aborted {} of {}",
            report.aborted,
            report.committed
        );
        assert!(report.log_bytes > 0);
    }
}
