//! TPC-C value generators: NURand, last names, random strings.
//!
//! Follows the TPC-C specification's generator definitions (rev. 5.11,
//! clause 2.1.6 and 4.3.2) so key-access skew matches the benchmark the
//! paper runs.

use simkit::DetRng;

/// The spec's non-uniform random function:
/// `(((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x`.
pub fn nurand(rng: &mut DetRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.uniform(0, a);
    let r2 = rng.uniform(x, y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Per-run NURand C constants (the spec draws them once per database).
#[derive(Debug, Clone, Copy)]
pub struct NurandC {
    /// C for customer last names (A = 255).
    pub c_last: u64,
    /// C for customer ids (A = 1023).
    pub c_id: u64,
    /// C for item ids (A = 8191).
    pub ol_i_id: u64,
}

impl NurandC {
    /// Draw the constants deterministically from `rng`.
    pub fn draw(rng: &mut DetRng) -> Self {
        NurandC {
            c_last: rng.uniform(0, 255),
            c_id: rng.uniform(0, 1023),
            ol_i_id: rng.uniform(0, 8191),
        }
    }
}

/// Customer-id draw (1-based, over `customers` per district).
pub fn customer_id(rng: &mut DetRng, c: &NurandC, customers: u32) -> u32 {
    nurand(rng, 1023, c.c_id, 1, customers as u64) as u32
}

/// Item-id draw (1-based, over `items`).
pub fn item_id(rng: &mut DetRng, c: &NurandC, items: u32) -> u32 {
    nurand(rng, 8191, c.ol_i_id, 1, items as u64) as u32
}

/// The spec's last-name syllables.
const SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// Compose a last name from a number in `[0, 999]`.
pub fn last_name(num: u64) -> String {
    let d1 = (num / 100) % 10;
    let d2 = (num / 10) % 10;
    let d3 = num % 10;
    format!("{}{}{}", SYLLABLES[d1 as usize], SYLLABLES[d2 as usize], SYLLABLES[d3 as usize])
}

/// Last name for a *run-time* draw (NURand over [0, 999]).
pub fn random_last_name(rng: &mut DetRng, c: &NurandC) -> String {
    last_name(nurand(rng, 255, c.c_last, 0, 999))
}

/// Last name for the *loader* (customer `c_id`): the first 1000 customers
/// get deterministic names, the rest NURand draws.
pub fn loader_last_name(rng: &mut DetRng, c: &NurandC, c_id: u32) -> String {
    if c_id <= 1000 {
        last_name((c_id - 1) as u64)
    } else {
        random_last_name(rng, c)
    }
}

/// A random alphanumeric string with length in `[lo, hi]`.
pub fn astring(rng: &mut DetRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.uniform(lo as u64, hi as u64) as usize;
    (0..len).map(|_| CHARS[rng.uniform(0, CHARS.len() as u64 - 1) as usize] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = DetRng::new(1);
        for _ in 0..5000 {
            let v = nurand(&mut rng, 1023, 7, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // NURand concentrates mass; the top-frequency value should be far
        // above the uniform expectation.
        let mut rng = DetRng::new(2);
        let c = NurandC::draw(&mut rng);
        let mut counts = vec![0u32; 3001];
        let n = 30_000;
        for _ in 0..n {
            counts[customer_id(&mut rng, &c, 3000) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform_expect = n / 3000;
        assert!(max > uniform_expect * 3, "max {max} vs uniform {uniform_expect}");
    }

    #[test]
    fn last_names_follow_syllable_digits() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn loader_names_deterministic_for_first_1000() {
        let mut rng = DetRng::new(3);
        let c = NurandC::draw(&mut rng);
        assert_eq!(loader_last_name(&mut rng, &c, 1), "BARBARBAR");
        assert_eq!(loader_last_name(&mut rng, &c, 1000), "EINGEINGEING");
    }

    #[test]
    fn astring_length_bounds() {
        let mut rng = DetRng::new(4);
        for _ in 0..200 {
            let s = astring(&mut rng, 8, 16);
            assert!((8..=16).contains(&s.len()));
        }
    }

    #[test]
    fn constants_are_deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        let ca = NurandC::draw(&mut a);
        let cb = NurandC::draw(&mut b);
        assert_eq!(ca.c_last, cb.c_last);
        assert_eq!(ca.c_id, cb.c_id);
        assert_eq!(ca.ol_i_id, cb.ol_i_id);
    }
}
