//! Compact row codecs for the TPC-C schema.
//!
//! Rows are flat little-endian field sequences with fixed-width strings —
//! realistic record sizes (what the log path sees) without a serialization
//! dependency. Money is i64 cents.

/// Field writer.
#[derive(Debug, Default)]
pub struct RowWriter {
    buf: Vec<u8>,
}

impl RowWriter {
    /// Writer with a capacity hint.
    pub fn new(capacity: usize) -> Self {
        RowWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Append a u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an i64 (money in cents).
    pub fn money(mut self, v: i64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a fixed-width string (truncated / zero-padded).
    pub fn str(mut self, s: &str, width: usize) -> Self {
        let bytes = s.as_bytes();
        let take = bytes.len().min(width);
        self.buf.extend_from_slice(&bytes[..take]);
        self.buf.extend(std::iter::repeat_n(0u8, width - take));
        self
    }

    /// Finish the row.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Field writer over a borrowed scratch buffer: the hot path builds every
/// row into the workload's reusable `Vec<u8>` and pays exactly one
/// allocation per written row (the final refcounted image), instead of a
/// `RowWriter` `Vec` plus per-field `String`s.
#[derive(Debug)]
pub struct RowBuf<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> RowBuf<'a> {
    /// A writer over `buf`, cleared first (capacity kept).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        buf.clear();
        RowBuf { buf }
    }

    /// Append a u32.
    pub fn u32(self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u64.
    pub fn u64(self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an i64 (money in cents).
    pub fn money(self, v: i64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a fixed-width field from raw bytes (truncated / zero-padded).
    /// Copying a field read with [`RowReader::raw`] reproduces its stored
    /// bytes exactly.
    pub fn bytes(self, src: &[u8], width: usize) -> Self {
        let take = src.len().min(width);
        self.buf.extend_from_slice(&src[..take]);
        self.buf.extend(std::iter::repeat_n(0u8, width - take));
        self
    }

    /// Freeze the scratch contents into a refcounted row image.
    pub fn finish(self) -> simkit::Bytes {
        simkit::Bytes::copy_from_slice(self.buf)
    }
}

/// Read a little-endian u32 at `off` (in-place row patching).
pub fn get_u32(row: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(row[off..off + 4].try_into().expect("4 bytes"))
}

/// Read money (i64 cents) at `off`.
pub fn get_money(row: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(row[off..off + 8].try_into().expect("8 bytes"))
}

/// Overwrite a little-endian u32 at `off`.
pub fn put_u32(row: &mut [u8], off: usize, v: u32) {
    row[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Overwrite a little-endian u64 at `off`.
pub fn put_u64(row: &mut [u8], off: usize, v: u64) {
    row[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Overwrite money (i64 cents) at `off`.
pub fn put_money(row: &mut [u8], off: usize, v: i64) {
    row[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Field reader over a row image.
#[derive(Debug)]
pub struct RowReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RowReader<'a> {
    /// Reader at the row start.
    pub fn new(buf: &'a [u8]) -> Self {
        RowReader { buf, pos: 0 }
    }

    /// Read a u32.
    pub fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        v
    }

    /// Read a u64.
    pub fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        v
    }

    /// Read money (i64 cents).
    pub fn money(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        v
    }

    /// Read a fixed-width string (trailing zeros trimmed). Allocates; kept
    /// for tests and display — hot paths use
    /// [`str_bytes`](RowReader::str_bytes).
    pub fn str(&mut self, width: usize) -> String {
        String::from_utf8_lossy(self.str_bytes(width)).into_owned()
    }

    /// Read a fixed-width string field as its trimmed bytes, borrowing the
    /// row (no allocation). Comparisons and copy-throughs want bytes, not
    /// `String`s.
    pub fn str_bytes(&mut self, width: usize) -> &'a [u8] {
        let raw = self.raw(width);
        let end = raw.iter().position(|b| *b == 0).unwrap_or(width);
        &raw[..end]
    }

    /// Read a fixed-width field's raw bytes, padding included. Replaying
    /// them through [`RowBuf::bytes`] with the same width reproduces the
    /// stored encoding byte for byte.
    pub fn raw(&mut self, width: usize) -> &'a [u8] {
        let raw = &self.buf[self.pos..self.pos + width];
        self.pos += width;
        raw
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) {
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_fields() {
        let row = RowWriter::new(64).u32(7).money(-1234).str("BAROUGHTABLE", 16).u64(99).finish();
        let mut r = RowReader::new(&row);
        assert_eq!(r.u32(), 7);
        assert_eq!(r.money(), -1234);
        assert_eq!(r.str(16), "BAROUGHTABLE");
        assert_eq!(r.u64(), 99);
    }

    #[test]
    fn strings_truncate_and_pad() {
        let row = RowWriter::new(8).str("toolongvalue", 4).finish();
        assert_eq!(row.len(), 4);
        let mut r = RowReader::new(&row);
        assert_eq!(r.str(4), "tool");
        let padded = RowWriter::new(8).str("ab", 6).finish();
        assert_eq!(padded.len(), 6);
        let mut r2 = RowReader::new(&padded);
        assert_eq!(r2.str(6), "ab");
    }

    #[test]
    fn skip_moves_cursor() {
        let row = RowWriter::new(16).u32(1).u32(2).u32(3).finish();
        let mut r = RowReader::new(&row);
        r.skip(4);
        assert_eq!(r.u32(), 2);
    }
}
