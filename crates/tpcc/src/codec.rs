//! Compact row codecs for the TPC-C schema.
//!
//! Rows are flat little-endian field sequences with fixed-width strings —
//! realistic record sizes (what the log path sees) without a serialization
//! dependency. Money is i64 cents.

/// Field writer.
#[derive(Debug, Default)]
pub struct RowWriter {
    buf: Vec<u8>,
}

impl RowWriter {
    /// Writer with a capacity hint.
    pub fn new(capacity: usize) -> Self {
        RowWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Append a u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an i64 (money in cents).
    pub fn money(mut self, v: i64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a fixed-width string (truncated / zero-padded).
    pub fn str(mut self, s: &str, width: usize) -> Self {
        let bytes = s.as_bytes();
        let take = bytes.len().min(width);
        self.buf.extend_from_slice(&bytes[..take]);
        self.buf.extend(std::iter::repeat_n(0u8, width - take));
        self
    }

    /// Finish the row.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Field reader over a row image.
#[derive(Debug)]
pub struct RowReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RowReader<'a> {
    /// Reader at the row start.
    pub fn new(buf: &'a [u8]) -> Self {
        RowReader { buf, pos: 0 }
    }

    /// Read a u32.
    pub fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        v
    }

    /// Read a u64.
    pub fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        v
    }

    /// Read money (i64 cents).
    pub fn money(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        v
    }

    /// Read a fixed-width string (trailing zeros trimmed).
    pub fn str(&mut self, width: usize) -> String {
        let raw = &self.buf[self.pos..self.pos + width];
        self.pos += width;
        let end = raw.iter().position(|b| *b == 0).unwrap_or(width);
        String::from_utf8_lossy(&raw[..end]).into_owned()
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) {
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_fields() {
        let row = RowWriter::new(64).u32(7).money(-1234).str("BAROUGHTABLE", 16).u64(99).finish();
        let mut r = RowReader::new(&row);
        assert_eq!(r.u32(), 7);
        assert_eq!(r.money(), -1234);
        assert_eq!(r.str(16), "BAROUGHTABLE");
        assert_eq!(r.u64(), 99);
    }

    #[test]
    fn strings_truncate_and_pad() {
        let row = RowWriter::new(8).str("toolongvalue", 4).finish();
        assert_eq!(row.len(), 4);
        let mut r = RowReader::new(&row);
        assert_eq!(r.str(4), "tool");
        let padded = RowWriter::new(8).str("ab", 6).finish();
        assert_eq!(padded.len(), 6);
        let mut r2 = RowReader::new(&padded);
        assert_eq!(r2.str(6), "ab");
    }

    #[test]
    fn skip_moves_cursor() {
        let row = RowWriter::new(16).u32(1).u32(2).u32(3).finish();
        let mut r = RowReader::new(&row);
        r.skip(4);
        assert_eq!(r.u32(), 2);
    }
}
