//! TPC-C schema: table handles, key builders, and the initial loader.

use crate::codec::RowWriter;
use crate::gen::{astring, loader_last_name, NurandC};
use memdb::{Database, Key, TableId};
use simkit::DetRng;

/// Scale parameters. The paper runs 16 warehouses; tests use
/// [`TpccConfig::small`] to stay fast.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Warehouses (the TPC-C scale unit).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000).
    pub customers: u32,
    /// Catalogue items (spec: 100_000).
    pub items: u32,
    /// Initial orders per district (spec: 3000).
    pub initial_orders: u32,
}

impl TpccConfig {
    /// The paper's configuration, with item/customer counts scaled down by
    /// 10× to keep simulated runs tractable (access *skew* is preserved by
    /// NURand; absolute cardinality only scales memory).
    pub fn paper() -> Self {
        TpccConfig {
            warehouses: 16,
            districts: 10,
            customers: 300,
            items: 10_000,
            initial_orders: 30,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn small() -> Self {
        TpccConfig { warehouses: 2, districts: 2, customers: 30, items: 100, initial_orders: 5 }
    }

    /// Figure-harness scale: the paper's 16 warehouses with cardinalities
    /// cut further so a 5-backend × 4-worker-count sweep loads in seconds.
    /// The log path — record sizes, NURand skew, group-commit cadence — is
    /// unaffected by the smaller catalogue.
    pub fn bench() -> Self {
        TpccConfig { warehouses: 16, districts: 4, customers: 120, items: 2000, initial_orders: 10 }
    }
}

/// Table ids of a loaded TPC-C database.
#[derive(Debug, Clone, Copy)]
pub struct Tables {
    /// WAREHOUSE: key (w_id).
    pub warehouse: TableId,
    /// DISTRICT: key (w_id, d_id).
    pub district: TableId,
    /// CUSTOMER: key (w_id, d_id, c_id).
    pub customer: TableId,
    /// Customer last-name index: key (w_id, d_id, last16, c_id) → c_id.
    pub customer_name: TableId,
    /// HISTORY: key (w_id, d_id, c_id, seq).
    pub history: TableId,
    /// ORDER: key (w_id, d_id, o_id).
    pub order: TableId,
    /// Customer→order index: key (w_id, d_id, c_id, o_id) → ().
    pub order_customer: TableId,
    /// NEW-ORDER: key (w_id, d_id, o_id) → ().
    pub new_order: TableId,
    /// ORDER-LINE: key (w_id, d_id, o_id, ol_number).
    pub order_line: TableId,
    /// ITEM: key (i_id).
    pub item: TableId,
    /// STOCK: key (w_id, i_id).
    pub stock: TableId,
}

/// The canonical table-name order (shared with replicas).
pub const TABLE_NAMES: [&str; 11] = [
    "warehouse",
    "district",
    "customer",
    "customer_name",
    "history",
    "order",
    "order_customer",
    "new_order",
    "order_line",
    "item",
    "stock",
];

/// Key builders. Every key is stack-built: the widest hot-path composite
/// (order-line, 16 bytes) fits a [`memdb::SmallKey`] inline; only the
/// 28-byte customer-name index entry spills, and that is built at load
/// time and during ~1%-frequency payment-by-name insert paths.
pub mod key {
    use memdb::keys::composite;
    use memdb::Key;

    /// WAREHOUSE key.
    pub fn warehouse(w: u32) -> Key {
        composite(&[w])
    }

    /// DISTRICT key.
    pub fn district(w: u32, d: u32) -> Key {
        composite(&[w, d])
    }

    /// CUSTOMER key.
    pub fn customer(w: u32, d: u32, c: u32) -> Key {
        composite(&[w, d, c])
    }

    /// Customer-name index key.
    pub fn customer_name(w: u32, d: u32, last: &str, c: u32) -> Key {
        let mut k = composite(&[w, d]);
        k.push_str(last, 16);
        k.push_u32(c);
        k
    }

    /// Name-index scan prefix for (w, d, last).
    pub fn customer_name_prefix(w: u32, d: u32, last: &str) -> Key {
        let mut k = composite(&[w, d]);
        k.push_str(last, 16);
        k
    }

    /// HISTORY key.
    pub fn history(w: u32, d: u32, c: u32, seq: u32) -> Key {
        composite(&[w, d, c, seq])
    }

    /// ORDER key.
    pub fn order(w: u32, d: u32, o: u32) -> Key {
        composite(&[w, d, o])
    }

    /// Customer→order index key.
    pub fn order_customer(w: u32, d: u32, c: u32, o: u32) -> Key {
        composite(&[w, d, c, o])
    }

    /// NEW-ORDER key.
    pub fn new_order(w: u32, d: u32, o: u32) -> Key {
        composite(&[w, d, o])
    }

    /// ORDER-LINE key.
    pub fn order_line(w: u32, d: u32, o: u32, ol: u32) -> Key {
        composite(&[w, d, o, ol])
    }

    /// ITEM key.
    pub fn item(i: u32) -> Key {
        composite(&[i])
    }

    /// STOCK key.
    pub fn stock(w: u32, i: u32) -> Key {
        composite(&[w, i])
    }
}

/// Create the catalog and load the initial population. Returns the table
/// handles. Loading bypasses the WAL (the paper's runs also start from a
/// loaded database).
pub fn load(db: &mut Database, cfg: &TpccConfig, rng: &mut DetRng, c: &NurandC) -> Tables {
    let tables = Tables {
        warehouse: db.create_table(TABLE_NAMES[0]),
        district: db.create_table(TABLE_NAMES[1]),
        customer: db.create_table(TABLE_NAMES[2]),
        customer_name: db.create_table(TABLE_NAMES[3]),
        history: db.create_table(TABLE_NAMES[4]),
        order: db.create_table(TABLE_NAMES[5]),
        order_customer: db.create_table(TABLE_NAMES[6]),
        new_order: db.create_table(TABLE_NAMES[7]),
        order_line: db.create_table(TABLE_NAMES[8]),
        item: db.create_table(TABLE_NAMES[9]),
        stock: db.create_table(TABLE_NAMES[10]),
    };

    // ITEM.
    for i in 1..=cfg.items {
        let row = RowWriter::new(96)
            .str(&astring(rng, 14, 24), 24)
            .money(rng.uniform_i64(100, 10_000))
            .str(&astring(rng, 26, 50), 50)
            .finish();
        load_row(db, tables.item, key::item(i), row);
    }

    for w in 1..=cfg.warehouses {
        // WAREHOUSE: name, tax (basis points), ytd cents.
        let row = RowWriter::new(48)
            .str(&astring(rng, 6, 10), 10)
            .u32(rng.uniform(0, 2000) as u32)
            .money(30_000_000)
            .finish();
        load_row(db, tables.warehouse, key::warehouse(w), row);

        // STOCK.
        for i in 1..=cfg.items {
            let row = RowWriter::new(96)
                .u32(rng.uniform(10, 100) as u32) // quantity
                .u32(0) // ytd
                .u32(0) // order_cnt
                .u32(0) // remote_cnt
                .str(&astring(rng, 24, 24), 24)
                .str(&astring(rng, 26, 50), 50)
                .finish();
            load_row(db, tables.stock, key::stock(w, i), row);
        }

        for d in 1..=cfg.districts {
            // DISTRICT: tax, ytd, next_o_id.
            let row = RowWriter::new(32)
                .u32(rng.uniform(0, 2000) as u32)
                .money(3_000_000)
                .u32(cfg.initial_orders + 1)
                .finish();
            load_row(db, tables.district, key::district(w, d), row);

            // CUSTOMER + name index.
            for cu in 1..=cfg.customers {
                let last = loader_last_name(rng, c, cu);
                let credit = if rng.chance(0.10) { "BC" } else { "GC" };
                let row = RowWriter::new(192)
                    .str(&astring(rng, 8, 16), 16) // first
                    .str("OE", 2) // middle
                    .str(&last, 16)
                    .money(-1000) // balance: -10.00
                    .money(1000) // ytd_payment
                    .u32(1) // payment_cnt
                    .u32(0) // delivery_cnt
                    .str(credit, 2)
                    .u32(rng.uniform(0, 5000) as u32) // discount bp
                    .str(&astring(rng, 50, 100), 100) // data
                    .finish();
                load_row(db, tables.customer, key::customer(w, d, cu), row);
                load_row(
                    db,
                    tables.customer_name,
                    key::customer_name(w, d, &last, cu),
                    cu.to_le_bytes().to_vec(),
                );
            }

            // Initial orders: each customer 1..initial_orders placed one.
            for o in 1..=cfg.initial_orders {
                let cu = rng.uniform(1, cfg.customers as u64) as u32;
                let ol_cnt = rng.uniform(5, 15) as u32;
                let delivered = o + 10 <= cfg.initial_orders; // older orders delivered
                let carrier = if delivered { rng.uniform(1, 10) as u32 } else { 0 };
                let row = RowWriter::new(32)
                    .u32(cu)
                    .u64(0) // entry date (sim time 0)
                    .u32(carrier)
                    .u32(ol_cnt)
                    .u32(1) // all_local
                    .finish();
                load_row(db, tables.order, key::order(w, d, o), row);
                load_row(db, tables.order_customer, key::order_customer(w, d, cu, o), Vec::new());
                if !delivered {
                    load_row(db, tables.new_order, key::new_order(w, d, o), Vec::new());
                }
                for ol in 1..=ol_cnt {
                    let i = rng.uniform(1, cfg.items as u64) as u32;
                    let row = RowWriter::new(64)
                        .u32(i)
                        .u32(w) // supply warehouse
                        .u64(if delivered { 1 } else { 0 }) // delivery date
                        .u32(5) // quantity
                        .money(rng.uniform_i64(10, 999_999))
                        .str(&astring(rng, 24, 24), 24)
                        .finish();
                    load_row(db, tables.order_line, key::order_line(w, d, o, ol), row);
                }
            }
        }
    }
    tables
}

fn load_row(db: &mut Database, table: TableId, key: Key, row: Vec<u8>) {
    let mut ctx = db.begin();
    db.insert(&mut ctx, table, key, row);
    db.commit(ctx).expect("loader rows are conflict-free");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::NurandC;

    #[test]
    fn load_populates_all_tables() {
        let mut db = Database::new();
        let mut rng = DetRng::new(1);
        let c = NurandC::draw(&mut rng);
        let cfg = TpccConfig::small();
        let t = load(&mut db, &cfg, &mut rng, &c);
        assert_eq!(db.table(t.warehouse).unwrap().len(), 2);
        assert_eq!(db.table(t.district).unwrap().len(), 4);
        assert_eq!(db.table(t.customer).unwrap().len(), 2 * 2 * 30);
        assert_eq!(db.table(t.customer_name).unwrap().len(), 2 * 2 * 30);
        assert_eq!(db.table(t.item).unwrap().len(), 100);
        assert_eq!(db.table(t.stock).unwrap().len(), 200);
        assert_eq!(db.table(t.order).unwrap().len(), 4 * 5);
        assert!(db.table(t.order_line).unwrap().len() >= 4 * 5 * 5);
        // Undelivered orders have NEW-ORDER rows.
        assert!(!db.table(t.new_order).unwrap().is_empty());
    }

    #[test]
    fn keys_are_order_preserving() {
        // Orders of one district sort together and ascend by o_id.
        let a = key::order(1, 1, 5);
        let b = key::order(1, 1, 6);
        let c = key::order(1, 2, 1);
        assert!(a < b && b < c);
        // Name-index prefix scan bounds.
        let p = key::customer_name_prefix(1, 1, "ABLE");
        let k = key::customer_name(1, 1, "ABLE", 3);
        let succ = memdb::keys::successor(&p);
        assert!(p <= k && k < succ);
    }

    #[test]
    fn loading_is_deterministic() {
        let build = || {
            let mut db = Database::new();
            let mut rng = DetRng::new(42);
            let c = NurandC::draw(&mut rng);
            load(&mut db, &TpccConfig::small(), &mut rng, &c);
            db.fingerprint()
        };
        assert_eq!(build(), build());
    }
}
