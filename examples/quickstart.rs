//! Quickstart: log to a Villars device's fast side and read the log back.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The flow mirrors the paper's drop-in API (§5.1): `x_pwrite` hands log
//! bytes to the byte-addressable fast side, `x_fsync` blocks until the
//! credit counter covers them (persistent on PM), and `x_pread` tail-reads
//! the log once the device has destaged it to NAND.

use xssd_suite::sim::SimTime;
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

fn main() {
    // A single stand-alone Villars device with the paper's SRAM-backed CMB
    // (128 KiB fast side, 32 KiB flow-control window).
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(VillarsConfig::villars_sram());
    let mut log = XLogFile::open(dev);

    println!("== X-SSD quickstart ==");
    println!(
        "device: SRAM-backed CMB, intake queue {} KiB",
        cluster.device(dev).intake_queue_bytes(0) >> 10
    );

    // Append a few transaction-log-shaped records.
    let mut now = SimTime::ZERO;
    let mut total = 0usize;
    for txn in 0u8..32 {
        let record = vec![txn; 512];
        now = log.x_pwrite(&mut cluster, now, &record).expect("x_pwrite");
        total += record.len();
    }
    let t_write = now;
    println!("appended {total} bytes by {t_write}");

    // Make them durable: one x_fsync covers everything outstanding.
    now = log.x_fsync(&mut cluster, now).expect("x_fsync");
    println!("durable (credit counter caught up) at {now}");
    println!("fsync cost for the batch: {}", now.saturating_since(t_write));

    // The device destages to its conventional side in the background; the
    // tail read blocks until the requested range is on NAND.
    let (t_read, bytes) = log.x_pread(&mut cluster, now, 1024).expect("x_pread");
    println!(
        "tail-read 1 KiB of destaged log at {t_read}: first txn id {}, last {}",
        bytes[0],
        bytes[bytes.len() - 1]
    );
    assert_eq!(&bytes[..512], &[0u8; 512][..]);
    assert_eq!(&bytes[512..], &[1u8; 512][..]);

    let stats = cluster.device(dev).cmb_stats(0);
    let dstats = cluster.device(dev).destage_stats(0);
    println!(
        "CMB: {} bytes in, {} chunks; destage: {} full pages, {} partial ({} filler bytes)",
        stats.bytes_in, stats.chunks, dstats.full_pages, dstats.partial_pages, dstats.filler_bytes
    );
    println!("ok");
}
