//! Replicated logging: a primary Villars device ships the log to two
//! secondaries over NTB; a hot-standby replica applies it; the primary
//! crashes and the standby takes over with zero committed-transaction loss.
//!
//! Run with: `cargo run --release --example replicated_logging`
//!
//! This is the paper's headline scenario (Fig. 1 right): the database
//! writes the log once; the *device* propagates it to remote sites and to
//! NAND, and the eager credit counter only reports bytes persisted
//! everywhere.

use xssd_suite::db::{encode_txn, Database, Replica};
use xssd_suite::sim::{SimDuration, SimTime};
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

fn main() {
    println!("== replicated logging & takeover ==");

    // Three servers, each with a Villars device; device 0 is the primary.
    let mut cluster = Cluster::new();
    let p = cluster.add_device(VillarsConfig::villars_sram());
    let s1 = cluster.add_device(VillarsConfig::villars_sram());
    let s2 = cluster.add_device(VillarsConfig::villars_sram());
    let mut now = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);
    println!("replication configured via vendor NVMe commands at {now}");

    // The primary database: a small accounts table.
    let mut primary_db = Database::new();
    let accounts = primary_db.create_table("accounts");
    let mut log = XLogFile::open(p);

    // The standby server applies the shipped log from ITS device (s1).
    let mut standby = Replica::new(s1, &["accounts"]);

    // Commit 50 transactions; each is durable on ALL devices before the
    // database considers it committed (eager policy).
    for i in 0u32..50 {
        let mut ctx = primary_db.begin();
        let key = xssd_suite::db::keys::composite(&[i]);
        primary_db.insert(&mut ctx, accounts, key, format!("balance-{i}").into_bytes());
        let records = primary_db.commit(ctx).expect("no conflicts");
        let bytes = encode_txn(&records);
        now = log.x_pwrite(&mut cluster, now, &bytes).expect("x_pwrite");
        now = log.x_fsync(&mut cluster, now).expect("x_fsync");
    }
    println!("50 transactions committed (replicated) by {now}");

    // Let destaging settle on the secondaries, then catch the standby up.
    let settle = now + SimDuration::from_millis(3);
    cluster.advance(settle);
    let applied = standby.catch_up(&mut cluster, settle);
    println!("standby applied {applied} transactions from the shipped log");

    // Disaster: the primary server loses power.
    let report = cluster.power_fail(p, settle);
    println!(
        "primary power failure: crash protocol made {} bytes durable, {} lost beyond gaps",
        report.durable_upto[0], report.lost_beyond_gap[0]
    );

    // The standby is promoted: its state must equal the primary's committed
    // state.
    assert_eq!(standby.txns_applied(), 50);
    assert_eq!(
        standby.db.fingerprint(),
        primary_db.fingerprint(),
        "standby state must match the failed primary"
    );
    let probe = xssd_suite::db::keys::composite(&[49]);
    let row = standby.db.peek(accounts, &probe).expect("last committed row present");
    assert_eq!(row, b"balance-49");
    println!("standby promoted: state verified identical to the failed primary");

    // Promote device s1 to primary for continued operation (vendor command).
    let t = cluster.configure_replication(settle, s1, &[s2]);
    println!("device {s1} promoted to primary at {t}; cluster running again");
    println!("ok");
}
