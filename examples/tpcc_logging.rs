//! TPC-C over every log backend: the Fig. 9 experiment as a runnable tour.
//!
//! Run with: `cargo run --release --example tpcc_logging`
//!
//! Loads a TPC-C database, then runs the standard transaction mix with four
//! workers against each logging setup — no-log, NVDIMM, conventional NVMe,
//! Villars SRAM/DRAM — and prints throughput and commit latency.

use xssd_suite::db::{
    run_workload, NoLog, NvmeLog, PmConfig, PmLog, RunnerConfig, WalConfig, WalManager, XssdLog,
};
use xssd_suite::sim::SimDuration;
use xssd_suite::ssd::{ConventionalSsd, SsdConfig};
use xssd_suite::tpcc::{setup, TpccConfig};
use xssd_suite::xssd::{Cluster, VillarsConfig};

fn villars(sram: bool) -> Cluster {
    let mut cl = Cluster::new();
    cl.add_device(if sram { VillarsConfig::villars_sram() } else { VillarsConfig::villars_dram() });
    cl
}

fn main() {
    println!("== TPC-C across log backends (4 workers, 16 KiB group commit) ==");
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>10}",
        "backend", "ktxn/s", "mean_lat_us", "log_MB", "flushes"
    );

    let runner = RunnerConfig {
        workers: 4,
        duration: SimDuration::from_millis(100),
        ..RunnerConfig::default()
    };

    for backend_name in ["no-log", "pm-nvdimm", "nvme-block", "villars-sram", "villars-dram"] {
        // Fresh database per backend so every run starts from the same state.
        let (mut db, mut workload, _rng) = setup(TpccConfig::bench(), 1234);
        let exec = |db: &mut xssd_suite::db::Database,
                    rng: &mut xssd_suite::sim::DetRng,
                    _w: usize| workload.execute(db, rng, 0);

        let report = match backend_name {
            "no-log" => {
                let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
                run_workload(&mut db, &mut wal, runner, exec)
            }
            "pm-nvdimm" => {
                let mut wal =
                    WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
                run_workload(&mut db, &mut wal, runner, exec)
            }
            "nvme-block" => {
                let device = ConventionalSsd::new(SsdConfig::default());
                let mut wal = WalManager::new(NvmeLog::new(device, 0, 8192), WalConfig::default());
                run_workload(&mut db, &mut wal, runner, exec)
            }
            "villars-sram" => {
                let mut wal = WalManager::new(
                    XssdLog::new(villars(true), 0, "villars-sram"),
                    WalConfig::default(),
                );
                run_workload(&mut db, &mut wal, runner, exec)
            }
            "villars-dram" => {
                let mut wal = WalManager::new(
                    XssdLog::new(villars(false), 0, "villars-dram"),
                    WalConfig::default(),
                );
                run_workload(&mut db, &mut wal, runner, exec)
            }
            _ => unreachable!(),
        };
        println!(
            "{:<18} {:>12.1} {:>14.1} {:>12.2} {:>10}",
            backend_name,
            report.throughput_tps() / 1e3,
            report.mean_latency_us(),
            report.log_bytes as f64 / 1e6,
            report.flushes
        );
    }
    println!();
    println!("takeaway: the Villars fast side gives PM-class commit latency from a");
    println!("standard NVMe device — no DIMM slots consumed, no PM programming model.");
}
