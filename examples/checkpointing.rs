//! Checkpointing: bounding recovery once the destage ring wraps.
//!
//! Run with: `cargo run --release --example checkpointing`
//!
//! The destage ring on the conventional side is finite; a long-running
//! database periodically snapshots its tables through the block interface
//! (conventional-class traffic — the priority scheduling of §6.4 keeps it
//! from hurting the log path) and records the covered log offset. Recovery
//! is snapshot + log-suffix replay instead of a full-log scan.

use xssd_suite::db::{encode_txn, recover, Checkpointer, Database};
use xssd_suite::sim::{SimDuration, SimTime};
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

fn main() {
    println!("== checkpoint + log-suffix recovery ==");
    let mut cfg = VillarsConfig::small();
    cfg.destage.ring_lbas = 16; // a deliberately small log window (64 KiB)
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(cfg);
    let mut log = XLogFile::open(dev);
    let mut db = Database::new();
    let table = db.create_table("events");
    let mut ck = Checkpointer::new(dev, 64, 64);

    let mut now = SimTime::ZERO;
    let mut last_meta = None;
    for i in 0u32..150 {
        let mut ctx = db.begin();
        db.insert(&mut ctx, table, xssd_suite::db::keys::composite(&[i]), vec![i as u8; 500]);
        let bytes = encode_txn(&db.commit(ctx).unwrap());
        now = log.x_pwrite(&mut cluster, now, &bytes).unwrap();
        now = log.x_fsync(&mut cluster, now).unwrap();
        // Checkpoint every 50 transactions (the final 50 stay in the log,
        // so recovery demonstrates the suffix replay).
        if i % 50 == 49 && i < 100 {
            let (_t, durable) = cluster.read_credit(dev, now, 0);
            let (t, meta) = ck.checkpoint(&mut cluster, now, &db, durable);
            println!(
                "checkpoint generation {} at txn {} (covers {} log bytes, {} KiB snapshot, done {t})",
                meta.generation,
                i + 1,
                meta.log_offset,
                meta.bytes >> 10
            );
            now = t;
            last_meta = Some(meta);
        }
    }
    cluster.advance(now + SimDuration::from_millis(2));
    let settle = now + SimDuration::from_millis(2);

    // The 150 x ~550 B of log far exceeds the 64 KiB ring: a full-log scan
    // is impossible, and that is fine.
    assert!(cluster.device_mut(dev).read_destaged(settle, 0, 0, 64).is_none());
    println!("ring has wrapped: log offset 0 is gone (expected)");

    // Crash and recover from the newest snapshot + suffix.
    let report = cluster.power_fail(dev, settle);
    cluster.reboot_device(dev);
    let durable = report.durable_upto[0];
    let (_t, meta, mut recovered) = ck.restore(&mut cluster, settle).expect("snapshot");
    println!(
        "restored snapshot generation {} (log offset {}); replaying suffix of {} bytes",
        meta.generation,
        meta.log_offset,
        durable - meta.log_offset
    );
    let (_t2, suffix) = cluster
        .device_mut(dev)
        .read_destaged(settle, 0, meta.log_offset, (durable - meta.log_offset) as usize)
        .expect("suffix readable");
    let rec = recover(&mut recovered, &suffix);
    println!("replayed {} transactions from the suffix", rec.txns_committed);
    assert_eq!(recovered.fingerprint(), db.fingerprint());
    assert_eq!(Some(meta.generation), last_meta.map(|m| m.generation));
    println!("state identical to pre-crash database: ok");
}
