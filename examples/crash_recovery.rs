//! Crash recovery: sudden power loss mid-workload, then database recovery
//! from the destaged log — the paper's crash-consistency story (§4.1) end
//! to end.
//!
//! Run with: `cargo run --release --example crash_recovery`
//!
//! The Villars crash protocol drains the intake queue (stopping at gaps),
//! destages the CMB ring residue on supercapacitor power, and reboots with
//! the log readable from the conventional side. Recovery replays exactly
//! the transactions whose commit markers became durable.

use xssd_suite::db::{encode_txn, recover, Database};
use xssd_suite::sim::SimTime;
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

fn main() {
    println!("== crash consistency & recovery ==");
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(VillarsConfig::villars_sram());
    let mut log = XLogFile::open(dev);

    let mut db = Database::new();
    let table = db.create_table("inventory");

    // Commit transactions; fsync only every 4th (the rest ride the group).
    let mut now = SimTime::ZERO;
    let mut synced_txns = 0u32;
    let mut written_txns = 0u32;
    for i in 0u32..23 {
        let mut ctx = db.begin();
        db.insert(&mut ctx, table, xssd_suite::db::keys::composite(&[i]), vec![i as u8; 200]);
        let records = db.commit(ctx).expect("no conflicts");
        let bytes = encode_txn(&records);
        now = log.x_pwrite(&mut cluster, now, &bytes).expect("x_pwrite");
        written_txns += 1;
        if i % 4 == 3 {
            now = log.x_fsync(&mut cluster, now).expect("x_fsync");
            synced_txns = written_txns;
        }
    }
    println!("{written_txns} transactions written, {synced_txns} explicitly fsynced");

    // Power fails RIGHT NOW — some transactions are only in the CMB ring or
    // intake queue, none of the tail was fsynced.
    let report = cluster.power_fail(dev, now);
    println!(
        "power failure: crash protocol destaged {} bytes ({} bytes lost beyond gaps)",
        report.durable_upto[0], report.lost_beyond_gap[0]
    );

    // Reboot: read the durable log back from the destage ring and replay.
    let durable = report.durable_upto[0] as usize;
    let (_t, stream) = cluster
        .device_mut(dev)
        .read_destaged(now, 0, 0, durable)
        .expect("destaged log readable after reboot");
    let mut recovered = Database::new();
    recovered.create_table("inventory");
    let rec_report = recover(&mut recovered, &stream);
    println!(
        "recovery: {} records scanned, {} transactions redone, {} orphaned records dropped",
        rec_report.records_scanned, rec_report.txns_committed, rec_report.records_uncommitted
    );

    // Guarantees: everything fsynced must be there; nothing torn.
    assert!(
        rec_report.txns_committed as u32 >= synced_txns,
        "fsynced transactions survived ({} >= {synced_txns})",
        rec_report.txns_committed
    );
    for i in 0..synced_txns {
        let key = xssd_suite::db::keys::composite(&[i]);
        assert!(recovered.peek(table, &key).is_some(), "fsynced txn {i} present");
    }
    // The crash protocol typically saves MORE than fsynced (everything that
    // reached the device) — that is the point of the Villars semantics.
    println!(
        "guarantee held: all {synced_txns} fsynced transactions recovered; the crash \
         protocol additionally saved {} un-fsynced ones",
        rec_report.txns_committed as u32 - synced_txns
    );
    println!("ok");
}
