//! Multi-writer fast side: per-lane credit counters (paper §7.1) and the
//! advanced x_alloc/x_free region API (paper §5.2).
//!
//! Run with: `cargo run --release --example multi_writer`
//!
//! A single credit counter cannot tell concurrent writers apart, so a
//! multi-threaded database either pins writers to per-core lanes (each with
//! its own counter) or allocates ring regions up front and fills them in
//! parallel — both are shown here.

use xssd_suite::pcie::MmioMode;
use xssd_suite::sim::{SimDuration, SimTime};
use xssd_suite::xssd::{Cluster, VillarsConfig, XAllocator, XLogFile};

fn main() {
    println!("== multi-writer lanes & the x_alloc/x_free API ==");

    // Part 1: four writer lanes, each with its own CMB ring, credit
    // counter, and destage-ring slice.
    let mut cfg = VillarsConfig::villars_sram();
    cfg.cmb.writer_lanes = 4;
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(cfg);
    println!("device exposes {} writer lanes", cluster.device(dev).lanes());

    let mut handles: Vec<XLogFile> =
        (0..4).map(|lane| XLogFile::open_lane(dev, lane, MmioMode::WriteCombining)).collect();

    // Interleave appends from all lanes (simulated worker threads).
    let mut now = SimTime::ZERO;
    for round in 0u8..16 {
        for (lane, h) in handles.iter_mut().enumerate() {
            let record = vec![(lane as u8) << 4 | round; 256];
            now = h.x_pwrite(&mut cluster, now, &record).expect("lane write");
        }
    }
    for h in handles.iter_mut() {
        now = h.x_fsync(&mut cluster, now).expect("lane fsync");
    }
    for lane in 0..4 {
        let (_t, credit) = cluster.read_credit(dev, now, lane);
        println!("lane {lane}: credit counter = {credit} bytes (16 x 256)");
        assert_eq!(credit, 16 * 256);
    }

    // Part 2: the advanced API — allocate adjacent regions, fill them out
    // of order (as parallel worker threads would), free them, and watch the
    // contiguous credit frontier cover everything.
    println!("\n-- x_alloc/x_free: parallel fill, contiguous destage --");
    let mut cluster2 = Cluster::new();
    let dev2 = cluster2.add_device(VillarsConfig::villars_sram());
    let mut alloc = XAllocator::new(dev2, 0);
    let regions: Vec<_> = (0..4).map(|_| alloc.x_alloc(1024)).collect();
    // Fill in reverse order: region 3 first. The CMB holds out-of-order
    // data until the log below it becomes contiguous.
    let mut t = SimTime::ZERO;
    for (i, r) in regions.iter().enumerate().rev() {
        let payload = vec![i as u8 + 1; 1024];
        t = alloc.write_region(&mut cluster2, t, *r, 0, &payload).expect("region fill");
        let (_tc, credit) = cluster2.read_credit(dev2, t, 0);
        println!(
            "filled region {i} (offset {}): credit = {credit} (contiguous frontier)",
            r.offset
        );
    }
    for r in &regions {
        alloc.x_free(*r);
    }
    let settle = t + SimDuration::from_micros(100);
    cluster2.advance(settle);
    let (_tc, credit) = cluster2.read_credit(dev2, settle, 0);
    assert_eq!(credit, 4 * 1024, "all regions persistent once contiguous");
    println!("all regions freed; credit = {credit}; outstanding = {}", alloc.outstanding());
    println!("ok");
}
