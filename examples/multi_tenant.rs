//! Multi-tenant device sharing (paper §7.2): many virtual databases on one
//! Villars device, SR-IOV style.
//!
//! Run with: `cargo run --release --example multi_tenant`
//!
//! "One may wish to have many virtual databases share a single device …
//! an SR-IOV implementation could simply segment the CMB across smaller,
//! independent regions." Each tenant gets a capability to its own lane —
//! ring, credit counter, flow-control window, destage slice — with
//! per-tenant accounting and revocation.

use xssd_suite::db::{encode_txn, Database};
use xssd_suite::sim::{DetRng, SimTime};
use xssd_suite::xssd::{Cluster, TenantManager, VillarsConfig};

fn main() {
    println!("== multi-tenant Villars: virtual databases on one device ==");
    let mut cfg = VillarsConfig::villars_sram();
    cfg.cmb.writer_lanes = 4;
    cfg.destage.ring_lbas = 4096;
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(cfg);
    let mut mgr = TenantManager::new(&cluster, dev);
    println!("device partitioned into {} lanes", mgr.capacity());

    // Three tenant databases, each with its own schema and log.
    let mut tenants = Vec::new();
    for name in ["orders-db", "billing-db", "metrics-db"] {
        let id = mgr.admit().expect("lane available");
        let mut db = Database::new();
        let table = db.create_table(name);
        println!("admitted {name} as {id:?} on lane {}", mgr.lane_of(id).unwrap());
        tenants.push((name, id, db, table));
    }

    // Interleaved transaction streams, one log lane each.
    let mut rng = DetRng::new(42);
    let mut now = SimTime::ZERO;
    for round in 0..30u32 {
        for (name, id, db, table) in tenants.iter_mut() {
            let mut ctx = db.begin();
            let key = xssd_suite::db::keys::composite(&[round]);
            let val = vec![rng.uniform(0, 255) as u8; 100 + (name.len() * 7)];
            db.insert(&mut ctx, *table, key, val);
            let bytes = encode_txn(&db.commit(ctx).unwrap());
            now = mgr.append(&mut cluster, *id, now, &bytes).unwrap();
            now = mgr.fsync(&mut cluster, *id, now).unwrap();
        }
    }
    println!("\nper-tenant accounting after 30 rounds:");
    for (name, id, _db, _t) in &tenants {
        let u = mgr.usage(*id).unwrap();
        println!(
            "  {name:<12} {:>8} bytes, {:>3} appends, {:>3} fsyncs",
            u.bytes_written, u.appends, u.fsyncs
        );
    }

    // One tenant churns out; its lane is recycled for a newcomer.
    let (gone_name, gone_id, ..) = tenants.remove(1);
    let final_usage = mgr.revoke(gone_id).unwrap();
    println!(
        "\nrevoked {gone_name}: final bill {} bytes over {} appends",
        final_usage.bytes_written, final_usage.appends
    );
    let newcomer = mgr.admit().expect("recycled lane available");
    println!("admitted newcomer {newcomer:?} on lane {}", mgr.lane_of(newcomer).unwrap());
    assert_eq!(mgr.admitted(), 3);
    println!("ok");
}
