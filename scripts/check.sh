#!/usr/bin/env bash
# The full local gate: formatting, lints as errors, and the test suite.
# Run from anywhere inside the repository; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace --quiet

echo "== allocation budget (release hot path)"
# The counting-allocator regression gate over the TPC-C / YCSB hot paths
# (crates/bench/tests/alloc_budget.rs). Runs in release so the measured
# averages match the configuration the wall-clock gate times.
cargo test --release -p xssd-bench --test alloc_budget --quiet

echo "== segment recovery smoke (release, torn-tail property)"
# Three seeds of the torn-tail committed-prefix property from
# crates/memdb/tests/segment_recovery.rs, in release mode (the same
# configuration the results gate runs the harnesses in).
cargo test --release -p memdb --test segment_recovery smoke_torn_tail --quiet

echo "== chaos_tpcc smoke (5 seeds, swept in parallel)"
cargo build --release -p xssd-bench --bin chaos_tpcc --quiet
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
# One invocation: the seeds run as independent cells on the bench::sweep
# pool (XSSD_BENCH_THREADS), reported in argument order.
# Non-golden seeds also run the segmented-lifecycle crash arcs
# (mid-rotation and mid-checkpoint power cuts).
XSSD_RESULTS_DIR="$smoke_dir" ./target/release/chaos_tpcc 7 1234 99991 31415 27182 > /dev/null

echo "ok: fmt, clippy, tests, recovery smoke, chaos smoke all clean"
