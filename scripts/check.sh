#!/usr/bin/env bash
# The full local gate: formatting, lints as errors, and the test suite.
# Run from anywhere inside the repository; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace --quiet

echo "ok: fmt, clippy, tests all clean"
