#!/usr/bin/env bash
# Wall-clock benchmark gate: build release, run every figure/ablation
# harness once, time each, and write BENCH_harness_wallclock.json at the
# repository root.
#
# The simulated results are a separate concern (results/*.json, byte-stable
# across runs); this script measures how long the simulator takes to produce
# them. Compare the JSON against a baseline from `main` to check a claimed
# speedup — docs/PERFORMANCE.md walks through the workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

HARNESSES=(
  fig09_local_logging
  fig10_write_combining
  fig11_queue_size
  fig12_destage_priority
  fig13_replication_delay
  ablation_data_movements
  ablation_destage_deadline
  ablation_replicated_tpcc
  ablation_replication_policy
  ablation_transport
)

echo "== cargo build --release"
cargo build --release --bins -p xssd-bench

OUT="BENCH_harness_wallclock.json"
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

{
  echo '{'
  echo '  "schema": "xssd-bench-wallclock/v1",'
  echo "  \"git_rev\": \"${GIT_REV}\","
  echo '  "unit": "milliseconds",'
  echo '  "harnesses": {'
} > "$OUT"

first=1
for h in "${HARNESSES[@]}"; do
  echo "== $h"
  start=$(date +%s%N)
  ./target/release/"$h" > /dev/null
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  echo "   ${ms} ms"
  if [ "$first" -eq 0 ]; then
    echo ',' >> "$OUT"
  fi
  first=0
  printf '    "%s": %s' "$h" "$ms" >> "$OUT"
done

{
  echo ''
  echo '  }'
  echo '}'
} >> "$OUT"

echo
echo "wrote $OUT"
