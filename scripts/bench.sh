#!/usr/bin/env bash
# Wall-clock benchmark gate: build release, run every figure/ablation
# harness once (plus the all_figures parallel driver), time each, and write
# BENCH_harness_wallclock.json at the repository root.
#
# The simulated results are a separate concern (results/*.json, byte-stable
# across runs and thread counts); this script measures how long the
# simulator takes to produce them. Compare the JSON against a baseline from
# `main` to check a claimed speedup — docs/PERFORMANCE.md walks through the
# workflow. Thread counts matter on two axes now: the JSON records the
# XSSD_BENCH_THREADS (grid-sweep parallelism) and XSSD_SIM_THREADS
# (conservative parallel cluster core) in effect plus the host's core
# count, so numbers are only compared like with like. The multi-device
# harnesses are additionally timed at XSSD_SIM_THREADS = 1/2/4/8 into the
# "sim_modes" section — the speedup-vs-threads series docs/PERFORMANCE.md
# tracks. Schema v4 adds a "workloads" section grouping the closed-loop
# database harnesses (the bench::driver layer) by the workload they drive
# (tpcc / ycsb), from the same timings as the "harnesses" section.
set -euo pipefail
cd "$(dirname "$0")/.."

HARNESSES=(
  fig09_local_logging
  fig10_write_combining
  fig11_queue_size
  fig12_destage_priority
  fig13_replication_delay
  fig_ycsb
  ablation_data_movements
  ablation_destage_deadline
  ablation_replicated_tpcc
  ablation_replication_policy
  ablation_transport
  ablation_recovery
  chaos_tpcc
  all_figures
)

echo "== cargo build --release"
cargo build --release --bins -p xssd-bench

# The harnesses whose simulation cells contain multiple devices (a
# replicated cluster): only these can benefit from the conservative
# parallel core, so only these get the per-mode timing sweep.
MULTI_DEVICE=(
  fig13_replication_delay
  ablation_replicated_tpcc
  chaos_tpcc
)
SIM_MODE_SWEEP=(1 2 4 8)

OUT="BENCH_harness_wallclock.json"
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST_CORES=$(nproc 2>/dev/null || echo 1)
THREADS="${XSSD_BENCH_THREADS:-$HOST_CORES}"
SIM_THREADS="${XSSD_SIM_THREADS:-1}"

time_harness_ms() { # harness [sim_threads]
  local start end
  start=$(date +%s%N)
  if [ "$#" -ge 2 ]; then
    XSSD_SIM_THREADS="$2" ./target/release/"$1" > /dev/null
  else
    ./target/release/"$1" > /dev/null
  fi
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 ))
}

{
  echo '{'
  echo '  "schema": "xssd-bench-wallclock/v4",'
  echo "  \"git_rev\": \"${GIT_REV}\","
  echo '  "unit": "milliseconds",'
  echo "  \"threads\": ${THREADS},"
  echo "  \"sim_threads\": ${SIM_THREADS},"
  echo "  \"host_cores\": ${HOST_CORES},"
  echo '  "harnesses": {'
} > "$OUT"

declare -A HARNESS_MS
first=1
for h in "${HARNESSES[@]}"; do
  echo "== $h (threads=${THREADS}, sim_threads=${SIM_THREADS})"
  ms=$(time_harness_ms "$h")
  HARNESS_MS[$h]=$ms
  echo "   ${ms} ms"
  if [ "$first" -eq 0 ]; then
    echo ',' >> "$OUT"
  fi
  first=0
  printf '    "%s": %s' "$h" "$ms" >> "$OUT"
done

# v4: the closed-loop database-workload harnesses (the bench::driver
# layer), grouped by the workload they drive — reuses the timings above.
{
  echo ''
  echo '  },'
  echo '  "workloads": {'
  echo "    \"tpcc\": {\"fig09_local_logging\": ${HARNESS_MS[fig09_local_logging]}, \"ablation_replicated_tpcc\": ${HARNESS_MS[ablation_replicated_tpcc]}, \"chaos_tpcc\": ${HARNESS_MS[chaos_tpcc]}},"
  echo "    \"ycsb\": {\"fig_ycsb\": ${HARNESS_MS[fig_ycsb]}, \"ablation_recovery\": ${HARNESS_MS[ablation_recovery]}}"
  echo '  },'
  echo '  "sim_modes": {'
} >> "$OUT"

first=1
for h in "${MULTI_DEVICE[@]}"; do
  if [ "$first" -eq 0 ]; then
    echo ',' >> "$OUT"
  fi
  first=0
  printf '    "%s": {' "$h" >> "$OUT"
  inner_first=1
  for st in "${SIM_MODE_SWEEP[@]}"; do
    echo "== $h (sim_threads=${st})"
    ms=$(time_harness_ms "$h" "$st")
    echo "   ${ms} ms"
    if [ "$inner_first" -eq 0 ]; then
      printf ', ' >> "$OUT"
    fi
    inner_first=0
    printf '"%s": %s' "$st" "$ms" >> "$OUT"
  done
  printf '}' >> "$OUT"
done

{
  echo ''
  echo '  }'
  echo '}'
} >> "$OUT"

echo
echo "wrote $OUT (threads=${THREADS}, sim_threads=${SIM_THREADS}, host_cores=${HOST_CORES})"
