#!/usr/bin/env bash
# Wall-clock benchmark gate: build release, run every figure/ablation
# harness once (plus the all_figures parallel driver), time each, and write
# BENCH_harness_wallclock.json at the repository root.
#
# The simulated results are a separate concern (results/*.json, byte-stable
# across runs and thread counts); this script measures how long the
# simulator takes to produce them. Compare the JSON against a baseline from
# `main` to check a claimed speedup — docs/PERFORMANCE.md walks through the
# workflow. Thread count matters now that the harnesses sweep their grids
# in parallel: the JSON records the XSSD_BENCH_THREADS in effect and the
# host's core count so numbers are only compared like with like.
set -euo pipefail
cd "$(dirname "$0")/.."

HARNESSES=(
  fig09_local_logging
  fig10_write_combining
  fig11_queue_size
  fig12_destage_priority
  fig13_replication_delay
  ablation_data_movements
  ablation_destage_deadline
  ablation_replicated_tpcc
  ablation_replication_policy
  ablation_transport
  chaos_tpcc
  all_figures
)

echo "== cargo build --release"
cargo build --release --bins -p xssd-bench

OUT="BENCH_harness_wallclock.json"
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
HOST_CORES=$(nproc 2>/dev/null || echo 1)
THREADS="${XSSD_BENCH_THREADS:-$HOST_CORES}"

{
  echo '{'
  echo '  "schema": "xssd-bench-wallclock/v2",'
  echo "  \"git_rev\": \"${GIT_REV}\","
  echo '  "unit": "milliseconds",'
  echo "  \"threads\": ${THREADS},"
  echo "  \"host_cores\": ${HOST_CORES},"
  echo '  "harnesses": {'
} > "$OUT"

first=1
for h in "${HARNESSES[@]}"; do
  echo "== $h (threads=${THREADS})"
  start=$(date +%s%N)
  ./target/release/"$h" > /dev/null
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  echo "   ${ms} ms"
  if [ "$first" -eq 0 ]; then
    echo ',' >> "$OUT"
  fi
  first=0
  printf '    "%s": %s' "$h" "$ms" >> "$OUT"
done

{
  echo ''
  echo '  }'
  echo '}'
} >> "$OUT"

echo
echo "wrote $OUT (threads=${THREADS}, host_cores=${HOST_CORES})"
