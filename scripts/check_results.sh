#!/usr/bin/env bash
# The byte-identical results gate: rebuild the harnesses, rerun every
# figure/ablation, and fail if any committed results/*.json changed by a
# single byte.
#
# The golden JSON files serialize *virtual* time, so they are exact across
# machines — any diff means a simulation-visible behaviour change, which
# must be an intentional, reviewed regeneration (commit the new goldens in
# the same change that explains them).
#
# Usage: check_results.sh [sweep_threads] [sim_threads]
#   With no arguments the harnesses sweep their grids at the ambient
#   XSSD_BENCH_THREADS (default: all host cores) and advance each
#   simulation cell at the ambient XSSD_SIM_THREADS (default: the
#   sequential oracle). Pass `1` as the first argument to force the
#   sequential sweep path, and `4` (say) as the second to advance every
#   multi-device cluster on the conservative parallel core. CI runs both
#   sweep modes and both simulation modes and the goldens must be
#   byte-identical in all of them — that equality IS the determinism
#   contract (docs/HARNESSES.md, docs/ARCHITECTURE.md).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -ge 1 ]; then
  export XSSD_BENCH_THREADS="$1"
fi
if [ "$#" -ge 2 ]; then
  export XSSD_SIM_THREADS="$2"
fi
echo "== thread mode: XSSD_BENCH_THREADS=${XSSD_BENCH_THREADS:-<unset: all host cores>}" \
     "XSSD_SIM_THREADS=${XSSD_SIM_THREADS:-<unset: sequential oracle>}"

HARNESSES=(
  fig09_local_logging
  fig10_write_combining
  fig11_queue_size
  fig12_destage_priority
  fig13_replication_delay
  fig_ycsb
  ablation_data_movements
  ablation_destage_deadline
  ablation_replicated_tpcc
  ablation_replication_policy
  ablation_transport
  ablation_recovery
  chaos_tpcc
)

echo "== cargo build --release"
cargo build --release --bins -p xssd-bench

for h in "${HARNESSES[@]}"; do
  echo "== $h"
  ./target/release/"$h" > /dev/null
done

echo "== diff results/*.json against committed goldens"
if ! git diff --exit-code -- 'results/*.json'; then
  echo
  echo "FAIL: results/*.json diverged from the committed goldens (see diff above)."
  echo "If the change is intentional, commit the regenerated files with the"
  echo "explanation; otherwise the refactor changed simulated behaviour."
  exit 1
fi

# Untracked results would mean a harness wrote a file the goldens don't
# cover — surface that too.
untracked=$(git ls-files --others --exclude-standard -- 'results/*.json')
if [ -n "$untracked" ]; then
  echo "FAIL: new untracked results files: $untracked"
  exit 1
fi

# Fault-injection determinism: the chaos run must be replayable from its
# seed alone — a second run of the default seed into a scratch directory
# must be byte-identical to the committed golden.
echo "== chaos_tpcc determinism (same seed twice)"
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
XSSD_RESULTS_DIR="$scratch" ./target/release/chaos_tpcc > /dev/null
if ! cmp results/chaos_tpcc.json "$scratch/chaos_tpcc.json"; then
  echo "FAIL: two chaos_tpcc runs of the same seed diverged."
  exit 1
fi

echo "ok: all ${#HARNESSES[@]} harnesses reproduce the goldens byte-for-byte"
