//! # xssd-suite — the X-SSD reproduction, assembled
//!
//! A facade over the workspace crates so examples and integration tests can
//! `use xssd_suite::…` one level deep:
//!
//! - [`sim`] — the discrete-event kernel;
//! - [`pcie`], [`flash`], [`nvme`], [`ssd`] — the hardware substrates;
//! - [`xssd`] — the paper's contribution: the Villars device, clusters,
//!   and the `x_pwrite`/`x_fsync`/`x_pread` host API;
//! - [`db`] — the main-memory database with pluggable log backends;
//! - [`tpcc`] — the TPC-C workload.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use flash;
pub use nvme;
pub use pcie;
pub use simkit as sim;
pub use ssd;
pub use tpcc;
pub use xssd_core as xssd;

/// The main-memory database substrate (re-exported under a shorter name).
pub mod db {
    pub use memdb::*;
}
