//! Cross-crate integration tests: database + Villars device + cluster,
//! exercised through the public `xssd_suite` facade exactly as the examples
//! and benches use it.

use xssd_suite::db::{
    encode_txn, recover, run_workload, Database, NoLog, Replica, RunnerConfig, WalConfig,
    WalManager, XssdLog,
};
use xssd_suite::sim::{DetRng, SimDuration, SimTime};
use xssd_suite::tpcc::{setup, TpccConfig};
use xssd_suite::xssd::{Cluster, ReplicationPolicy, VillarsConfig, XLogFile};

fn small_cluster(n: usize) -> Cluster {
    let mut cl = Cluster::new();
    for _ in 0..n {
        cl.add_device(VillarsConfig::small());
    }
    cl
}

#[test]
fn tpcc_committed_work_survives_crash_and_recovery() {
    // Run TPC-C over a Villars log, crash the device, recover a fresh
    // database from the destaged stream, and confirm every recovered
    // transaction's effects match the primary's committed state.
    let (mut db, mut workload, _rng) = setup(TpccConfig::small(), 77);
    let cluster = {
        let mut cl = Cluster::new();
        cl.add_device(VillarsConfig::villars_sram());
        cl
    };
    let mut wal = WalManager::new(XssdLog::new(cluster, 0, "villars"), WalConfig::default());
    let report = run_workload(
        &mut db,
        &mut wal,
        RunnerConfig {
            workers: 2,
            duration: SimDuration::from_millis(10),
            ..RunnerConfig::default()
        },
        |db, rng, _| workload.execute(db, rng, 0),
    );
    assert!(report.committed > 100, "committed {}", report.committed);

    // Crash at the end of the run.
    let now = SimTime::ZERO + report.elapsed;
    let backend = wal.backend_mut();
    let crash = backend.cluster_mut().power_fail(0, now);
    let durable = crash.durable_upto[0] as usize;
    assert!(durable > 0);

    // Read the durable log and recover.
    let (_t, stream) = backend
        .cluster_mut()
        .device_mut(0)
        .read_destaged(now, 0, 0, durable)
        .expect("durable log readable");
    let mut recovered = Database::new();
    for name in xssd_suite::tpcc::TABLE_NAMES {
        recovered.create_table(name);
    }
    let rec = recover(&mut recovered, &stream);
    // Every flushed transaction is durable; the final tail batch flushed at
    // run end, so everything committed should be recovered.
    assert!(
        rec.txns_committed as u64 >= report.committed * 9 / 10,
        "recovered {} of {}",
        rec.txns_committed,
        report.committed
    );
    // Spot-check: recovered rows byte-identical to the live database.
    let t = recovered.table_id("district").expect("table exists");
    let mut probe_ctx = db.begin();
    let rows = db.scan(&mut probe_ctx, t, &[], &[0xFF; 9], 50);
    assert!(!rows.is_empty());
    for (k, v) in rows {
        assert_eq!(recovered.peek(t, &k), Some(v.as_slice()), "district row diverged");
    }
}

#[test]
fn three_node_chain_applies_in_order() {
    let mut cl = small_cluster(3);
    let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1, 2]);
    let mut f = XLogFile::open(0);
    let mut now = t0;
    for i in 0..10u8 {
        now = f.x_pwrite(&mut cl, now, &[i; 300]).unwrap();
    }
    now = f.x_fsync(&mut cl, now).unwrap();
    // Eager fsync ⇒ both secondaries hold all 3000 bytes.
    for dev in [1usize, 2] {
        let credit = cl.device_mut(dev).local_credit(now, 0);
        assert_eq!(credit, 3000, "secondary {dev}");
    }
}

#[test]
fn lazy_policy_acks_before_secondaries() {
    let mut eager_cfg = VillarsConfig::small();
    eager_cfg.replication = ReplicationPolicy::Eager;
    let mut lazy_cfg = VillarsConfig::small();
    lazy_cfg.replication = ReplicationPolicy::Lazy;

    let run = |cfg: VillarsConfig| -> SimDuration {
        let mut cl = Cluster::new();
        let p = cl.add_device(cfg.clone());
        let s = cl.add_device(cfg);
        let t0 = cl.configure_replication(SimTime::ZERO, p, &[s]);
        let mut f = XLogFile::open(p);
        let t1 = f.x_pwrite(&mut cl, t0, &[9u8; 2048]).unwrap();
        let t2 = f.x_fsync(&mut cl, t1).unwrap();
        t2.saturating_since(t0)
    };
    let eager = run(eager_cfg);
    let lazy = run(lazy_cfg);
    assert!(lazy < eager, "lazy ({lazy}) must acknowledge before eager ({eager})");
}

#[test]
fn replica_keeps_pace_with_interleaved_writes() {
    let mut cl = small_cluster(2);
    let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
    let mut primary = Database::new();
    let tab = primary.create_table("kv");
    let mut f = XLogFile::open(0);
    let mut replica = Replica::new(1, &["kv"]);
    let mut rng = DetRng::new(5);
    let mut now = t0;
    for round in 0..6u32 {
        for i in 0..8u32 {
            let mut ctx = primary.begin();
            let key = xssd_suite::db::keys::composite(&[round, i]);
            let val = vec![rng.uniform(0, 255) as u8; rng.uniform(20, 200) as usize];
            primary.insert(&mut ctx, tab, key, val);
            let bytes = encode_txn(&primary.commit(ctx).unwrap());
            now = f.x_pwrite(&mut cl, now, &bytes).unwrap();
        }
        now = f.x_fsync(&mut cl, now).unwrap();
        // Catch the replica up mid-stream.
        let settle = now + SimDuration::from_millis(1);
        cl.advance(settle);
        replica.catch_up(&mut cl, settle);
        now = settle;
    }
    let settle = now + SimDuration::from_millis(2);
    cl.advance(settle);
    replica.catch_up(&mut cl, settle);
    assert_eq!(replica.txns_applied(), 48);
    assert_eq!(replica.db.fingerprint(), primary.fingerprint());
}

#[test]
fn workload_runs_identically_with_and_without_facade() {
    // The facade re-exports the same crates; a NoLog run through it matches
    // a direct memdb run (deterministic seeds).
    let run = || {
        let (mut db, mut workload, _rng) = setup(TpccConfig::small(), 11);
        let mut wal = WalManager::new(NoLog::new(), WalConfig::default());
        let r = run_workload(
            &mut db,
            &mut wal,
            RunnerConfig {
                workers: 3,
                duration: SimDuration::from_millis(8),
                ..RunnerConfig::default()
            },
            |db, rng, _| workload.execute(db, rng, 0),
        );
        (r.committed, db.fingerprint())
    };
    let (c1, f1) = run();
    let (c2, f2) = run();
    assert_eq!(c1, c2);
    assert_eq!(f1, f2);
}

#[test]
fn vendor_control_plane_round_trips() {
    use xssd_suite::nvme::{Status, VendorCommand};
    use xssd_suite::xssd::vendor;
    let mut cl = small_cluster(1);
    // Scheduler mode change.
    let (_t, e) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::SET_SCHED_MODE, [2, 0, 0, 0, 0, 0]),
    );
    assert_eq!(e.status, Status::Success);
    // Transport status register: stand-alone reports inactive (2).
    let (_t2, e2) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::GET_TRANSPORT_STATUS, [0; 6]),
    );
    assert_eq!(e2.status, Status::Success);
    assert_eq!(e2.result, 2);
    // Bad field rejected.
    let (_t3, e3) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::SET_SCHED_MODE, [99, 0, 0, 0, 0, 0]),
    );
    assert_eq!(e3.status, Status::InvalidField);
}

#[test]
fn block_interface_still_works_on_a_villars() {
    // The conventional side stays a fully functional NVMe block device
    // while the fast side is in use (the "two IO profiles, one device"
    // claim, paper §3.1).
    use xssd_suite::nvme::NvmeDriver;
    let cl = Cluster::new();
    let _ = cl;
    let device = xssd_suite::xssd::VillarsDevice::new(VillarsConfig::small());
    let mut drv = NvmeDriver::new(device);
    let w = drv.write_blocking(SimTime::ZERO, 40, 1);
    assert!(w.status.is_ok());
    let r = drv.read_blocking(w.completed_at, 40, 1);
    assert!(r.status.is_ok());
}

#[test]
fn secondary_failure_is_detected_and_survivable() {
    // Paper §7.1: a replication error shows up as an indeterminate credit
    // delay; the database checks the transport status register and
    // reconfigures the device via vendor commands.
    use xssd_suite::nvme::{Status, VendorCommand};
    use xssd_suite::xssd::vendor;

    let mut cl = small_cluster(2);
    let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
    let mut f = XLogFile::open(0);

    // Healthy: a replicated write syncs.
    let t1 = f.x_pwrite(&mut cl, t0, &[1u8; 512]).unwrap();
    let t2 = f.x_fsync(&mut cl, t1).unwrap();

    // The secondary's server loses power.
    cl.power_fail(1, t2);
    assert!(cl.is_dead(1));

    // A new write cannot reach eager durability: fsync stalls.
    let t3 = f.x_pwrite(&mut cl, t2, &[2u8; 512]).unwrap();
    let err = f.x_fsync(&mut cl, t3).expect_err("eager fsync cannot complete");
    assert!(matches!(err, xssd_suite::xssd::XApiError::Stalled { .. }));

    // The database checks the status register: Degraded (1) once the
    // staleness window has passed without counter updates.
    let probe_at = t3 + SimDuration::from_millis(1);
    cl.advance(probe_at);
    let (_t4, entry) =
        cl.vendor_blocking(0, probe_at, VendorCommand::new(vendor::GET_TRANSPORT_STATUS, [0; 6]));
    assert_eq!(entry.status, Status::Success);
    assert_eq!(entry.result, 1, "primary must report Degraded");

    // Demote to stand-alone and retry: the fsync now completes locally.
    let (t5, e2) =
        cl.vendor_blocking(0, probe_at, VendorCommand::new(vendor::SET_STAND_ALONE, [0; 6]));
    assert_eq!(e2.status, Status::Success);
    let t6 = f.x_fsync(&mut cl, t5).expect("local fsync after demotion");
    assert!(t6 >= t5);
    let (_t7, credit) = cl.read_credit(0, t6, 0);
    assert_eq!(credit, 1024, "both writes locally persistent");
}

#[test]
fn rebooted_secondary_rejoins_via_vendor_commands() {
    let mut cl = small_cluster(2);
    let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
    let mut f = XLogFile::open(0);
    let t1 = f.x_pwrite(&mut cl, t0, &[7u8; 256]).unwrap();
    let t2 = f.x_fsync(&mut cl, t1).unwrap();

    // Crash and reboot the secondary; its CMB is empty, role stand-alone.
    cl.power_fail(1, t2);
    cl.reboot_device(1);

    // Reconfigure the pair. The new secondary starts from a fresh mirror
    // stream — the primary must restart its log offsets for the new epoch
    // (a fresh XLogFile models the database reopening the log).
    let t3 = cl.configure_replication(t2, 0, &[1]);
    // NOTE: the old handle's offsets continue; mirrored data for offsets the
    // rebooted secondary never saw are held as a gap, so its credit stays 0
    // until the gap is (never) filled. A real database re-syncs the base
    // state first; here we verify the transport plumbing is back.
    cl.advance(t3 + SimDuration::from_micros(50));
    assert!(!cl.is_dead(1));
    assert!(cl.device(0).is_primary());
}

#[test]
fn checkpoint_bounds_recovery_after_ring_wrap() {
    // Write far more log than the destage ring holds. Without a checkpoint
    // the early log has been overwritten (recovery from offset 0 is
    // impossible); with a checkpoint + suffix replay the full state comes
    // back.
    use xssd_suite::db::{recover, Checkpointer, Database};

    let mut cfg = VillarsConfig::small(); // destage ring: 64 LBAs x 4 KiB
    cfg.destage.ring_lbas = 16; // shrink further: 64 KiB of log window
    let mut cl = Cluster::new();
    let dev = cl.add_device(cfg);
    let mut f = XLogFile::open(dev);
    let mut db = Database::new();
    let tab = db.create_table("t");
    let mut ck = Checkpointer::new(dev, 64, 64);

    let mut now = SimTime::ZERO;
    let mut checkpoint_meta = None;
    let total_txns = 120u32; // ~120 * ~700B >> 64 KiB ring
    for i in 0..total_txns {
        let mut ctx = db.begin();
        db.insert(&mut ctx, tab, xssd_suite::db::keys::composite(&[i]), vec![i as u8; 600]);
        let bytes = encode_txn(&db.commit(ctx).unwrap());
        now = f.x_pwrite(&mut cl, now, &bytes).unwrap();
        now = f.x_fsync(&mut cl, now).unwrap();
        if i == 90 {
            // Checkpoint covering everything durable so far.
            let (_t_credit, durable) = cl.read_credit(dev, now, 0);
            let (t, meta) = ck.checkpoint(&mut cl, now, &db, durable);
            now = t;
            checkpoint_meta = Some(meta);
        }
    }
    let settle = now + SimDuration::from_millis(2);
    cl.advance(settle);

    // The ring wrapped: offset 0 is no longer readable.
    assert!(
        cl.device_mut(dev).read_destaged(settle, 0, 0, 64).is_none(),
        "early log must have aged off the ring"
    );

    // Crash + recover: snapshot + suffix replay.
    let report = cl.power_fail(dev, settle);
    cl.reboot_device(dev);
    let durable = report.durable_upto[0];
    let (_t, meta, mut recovered) =
        ck.restore(&mut cl, settle).expect("checkpoint survives the crash");
    assert_eq!(Some(meta), checkpoint_meta);
    assert!(meta.log_offset < durable);
    let suffix_len = (durable - meta.log_offset) as usize;
    let (_t2, suffix) = cl
        .device_mut(dev)
        .read_destaged(settle, 0, meta.log_offset, suffix_len)
        .expect("suffix on the ring");
    let rec = recover(&mut recovered, &suffix);
    assert!(rec.txns_committed > 0, "suffix transactions replayed");
    assert_eq!(
        recovered.fingerprint(),
        db.fingerprint(),
        "checkpoint + suffix replay reconstructs the exact state"
    );
}

#[test]
fn intake_queue_reconfiguration_via_vendor_command() {
    use xssd_suite::nvme::{Status, VendorCommand};
    use xssd_suite::xssd::vendor;
    let mut cl = small_cluster(1);
    assert_eq!(cl.device(0).intake_queue_bytes(0), 4 << 10);
    // Renegotiate the flow-control window to 16 KiB on lane 0.
    let (_t, e) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::SET_INTAKE_QUEUE, [16 << 10, 0, 0, 0, 0, 0]),
    );
    assert_eq!(e.status, Status::Success);
    assert_eq!(cl.device(0).intake_queue_bytes(0), 16 << 10);
    // Zero bytes or a bad lane are rejected.
    let (_t, e2) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::SET_INTAKE_QUEUE, [0, 0, 0, 0, 0, 0]),
    );
    assert_eq!(e2.status, Status::InvalidField);
    let (_t, e3) = cl.vendor_blocking(
        0,
        SimTime::ZERO,
        VendorCommand::new(vendor::SET_INTAKE_QUEUE, [4096, 9, 0, 0, 0, 0]),
    );
    assert_eq!(e3.status, Status::InvalidField);
    // And a bigger window genuinely changes the x_pwrite protocol: a 16 KiB
    // append completes its hand-off in one window (no mid-write checks).
    let mut f = XLogFile::open(0);
    let t = f.x_pwrite(&mut cl, SimTime::from_micros(10), &[7u8; 16 << 10]).unwrap();
    assert!(t > SimTime::from_micros(10));
}

#[test]
fn uncached_mode_is_slower_than_write_combining_end_to_end() {
    use xssd_suite::pcie::MmioMode;
    let run = |mode: MmioMode| {
        let mut cl = small_cluster(1);
        let mut f = XLogFile::open_lane(0, 0, mode);
        let mut now = SimTime::ZERO;
        for _ in 0..16 {
            now = f.x_pwrite(&mut cl, now, &[1u8; 1024]).unwrap();
        }
        f.x_fsync(&mut cl, now).unwrap()
    };
    let wc = run(MmioMode::WriteCombining);
    let uc = run(MmioMode::Uncached);
    assert!(
        uc.as_nanos() > wc.as_nanos() * 2,
        "UC ({uc}) must pay far more TLP overhead than WC ({wc})"
    );
}
