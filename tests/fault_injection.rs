//! Fault injection: the stack under imperfect NAND.
//!
//! The paper's error story (§7.1): destage failures are handled internally
//! by picking a new block; conventional-side errors surface as status
//! codes. These tests run the full logging path over flash with grown bad
//! blocks and program failures and verify the durability contract is
//! unaffected.

use xssd_suite::db::{encode_txn, recover, Database};
use xssd_suite::flash::ReliabilityConfig;
use xssd_suite::sim::{DetRng, SimDuration, SimTime};
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

/// A Villars whose NAND grows bad blocks aggressively.
fn flaky_config(seed: u64) -> VillarsConfig {
    let mut cfg = VillarsConfig::small();
    cfg.conventional.reliability = ReliabilityConfig {
        initial_bad_block_rate: 0.05,
        program_fail_rate: 0.01, // 1% of programs grow a bad block
        base_bit_error_rate: 1e-9,
        wear_ber_slope: 0.0,
        ecc_correctable_bits: 72,
        pe_cycle_limit: u32::MAX,
    };
    cfg.conventional.seed = seed;
    cfg
}

#[test]
fn destage_retries_through_program_failures() {
    // Push enough pages through the fast side that several destage programs
    // fail; the firmware retries onto fresh blocks and the log content is
    // still byte-exact.
    let mut cl = Cluster::new();
    let dev = cl.add_device(flaky_config(0xBAD));
    let mut f = XLogFile::open(dev);
    let mut rng = DetRng::new(17);
    let mut payload = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..60 {
        let chunk: Vec<u8> = (0..2048).map(|_| rng.uniform(0, 255) as u8).collect();
        now = f.x_pwrite(&mut cl, now, &chunk).unwrap();
        now = f.x_fsync(&mut cl, now).unwrap();
        payload.extend_from_slice(&chunk);
    }
    let settle = now + SimDuration::from_millis(5);
    cl.advance(settle);
    // Everything destaged despite failures; read a window back and compare.
    let from = cl.device(dev).destaged_upto(0).saturating_sub(16 << 10).max(8 << 10); // stay inside the readable ring
    let (_t, bytes) =
        cl.device_mut(dev).read_destaged(settle, 0, from, 8 << 10).expect("window readable");
    assert_eq!(&bytes[..], &payload[from as usize..from as usize + (8 << 10)]);
}

#[test]
fn crash_protocol_holds_on_flaky_nand() {
    let mut cl = Cluster::new();
    let dev = cl.add_device(flaky_config(0xFA11));
    let mut f = XLogFile::open(dev);
    let mut db = Database::new();
    let tab = db.create_table("t");
    let mut now = SimTime::ZERO;
    for i in 0..40u32 {
        let mut ctx = db.begin();
        db.insert(&mut ctx, tab, xssd_suite::db::keys::composite(&[i]), vec![i as u8; 300]);
        let bytes = encode_txn(&db.commit(ctx).unwrap());
        now = f.x_pwrite(&mut cl, now, &bytes).unwrap();
        now = f.x_fsync(&mut cl, now).unwrap();
    }
    let report = cl.power_fail(dev, now);
    let durable = report.durable_upto[0] as usize;
    let (_t, stream) = cl
        .device_mut(dev)
        .read_destaged(now, 0, 0, durable)
        .expect("durable log readable after crash on flaky NAND");
    let mut recovered = Database::new();
    recovered.create_table("t");
    let rec = recover(&mut recovered, &stream);
    assert_eq!(rec.txns_committed, 40, "every fsynced txn survives");
    assert_eq!(recovered.fingerprint(), db.fingerprint());
}

#[test]
fn replication_still_exact_with_flaky_secondary_nand() {
    let mut cl = Cluster::new();
    let p = cl.add_device(VillarsConfig::small());
    let s = cl.add_device(flaky_config(0x5EC));
    let t0 = cl.configure_replication(SimTime::ZERO, p, &[s]);
    let mut f = XLogFile::open(p);
    let mut now = t0;
    let mut total = 0u64;
    for i in 0..30u8 {
        now = f.x_pwrite(&mut cl, now, &[i; 700]).unwrap();
        total += 700;
        now = f.x_fsync(&mut cl, now).unwrap();
    }
    // Eager fsync returned: the flaky secondary holds every byte in PM.
    let sec_credit = cl.device_mut(s).local_credit(now, 0);
    assert_eq!(sec_credit, total);
    // And the secondary's destage (with retries) still lands content.
    let settle = now + SimDuration::from_millis(10);
    cl.advance(settle);
    let (_t, bytes) =
        cl.device_mut(s).read_destaged(settle, 0, 0, 700).expect("secondary log readable");
    assert_eq!(bytes, vec![0u8; 700]);
}
