//! Randomized crash-consistency tests: for arbitrary write/fsync/crash
//! schedules, the Villars durability contract must hold:
//!
//! 1. everything acknowledged by `x_fsync` survives a power failure;
//! 2. the recovered log is a clean prefix of what was written (no holes,
//!    no reordering, no corruption);
//! 3. recovery replays exactly the committed transactions.
//!
//! Schedules are drawn from [`DetRng`] across many fixed seeds, so every
//! case is replayable by seed (no external property-testing framework).

use xssd_suite::db::{decode_stream, encode_txn, Database};
use xssd_suite::sim::{DetRng, SimTime};
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

/// A step of the randomized schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Append a record of the given size (bounded).
    Write(usize),
    /// x_fsync everything written so far.
    Fsync,
}

fn random_schedule(rng: &mut DetRng) -> Vec<Step> {
    let len = rng.uniform(1, 40) as usize;
    (0..len)
        .map(|_| {
            if rng.chance(0.75) {
                Step::Write(rng.uniform(1, 3000) as usize)
            } else {
                Step::Fsync
            }
        })
        .collect()
}

#[test]
fn fsynced_bytes_always_survive_crash() {
    for seed in 0..32u64 {
        let mut rng = DetRng::new(0xC0A5_7000 + seed);
        let steps = random_schedule(&mut rng);
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut f = XLogFile::open(dev);
        let mut now = SimTime::ZERO;
        let mut written: u64 = 0;
        let mut synced: u64 = 0;
        let mut payload: Vec<u8> = Vec::new();
        for s in &steps {
            match s {
                Step::Write(n) => {
                    // Deterministic, position-dependent content so prefix
                    // equality is meaningful.
                    let chunk: Vec<u8> =
                        (0..*n).map(|i| ((written as usize + i) % 251) as u8).collect();
                    now = f.x_pwrite(&mut cl, now, &chunk).unwrap();
                    payload.extend_from_slice(&chunk);
                    written += *n as u64;
                }
                Step::Fsync => {
                    now = f.x_fsync(&mut cl, now).unwrap();
                    synced = written;
                }
            }
        }
        let report = cl.power_fail(dev, now);
        let durable = report.durable_upto[0];
        // (1) fsynced data survives.
        assert!(durable >= synced, "seed {seed}: durable {durable} < synced {synced}");
        // (2) durable is a prefix of what was written, byte-identical.
        assert!(durable <= written, "seed {seed}");
        if durable > 0 {
            let (_t, bytes) = cl
                .device_mut(dev)
                .read_destaged(now, 0, 0, durable as usize)
                .expect("durable log readable");
            assert_eq!(&bytes[..], &payload[..durable as usize], "seed {seed}");
        }
    }
}

#[test]
fn recovery_replays_exactly_committed_transactions() {
    for seed in 0..24u64 {
        let mut rng = DetRng::new(0xDB_2E_C0 + seed);
        let n_txns = rng.uniform(1, 25) as usize;
        let crash_after = rng.uniform(0, 25) as usize;
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut f = XLogFile::open(dev);
        let mut db = Database::new();
        let t = db.create_table("t");
        let mut now = SimTime::ZERO;
        let mut fsynced_txns = 0usize;
        for i in 0..n_txns {
            let mut ctx = db.begin();
            db.insert(
                &mut ctx,
                t,
                xssd_suite::db::keys::composite(&[i as u32]),
                vec![i as u8; 50 + (i * 37) % 300],
            );
            let bytes = encode_txn(&db.commit(ctx).unwrap());
            now = f.x_pwrite(&mut cl, now, &bytes).unwrap();
            if i < crash_after {
                now = f.x_fsync(&mut cl, now).unwrap();
                fsynced_txns = i + 1;
            }
        }
        let report = cl.power_fail(dev, now);
        let durable = report.durable_upto[0] as usize;
        let mut recovered = Database::new();
        recovered.create_table("t");
        if durable > 0 {
            let (_t2, stream) =
                cl.device_mut(dev).read_destaged(now, 0, 0, durable).expect("readable");
            let rec = xssd_suite::db::recover(&mut recovered, &stream);
            assert!(rec.txns_committed >= fsynced_txns.min(n_txns), "seed {seed}");
            // Every recovered row matches the live database's row.
            for i in 0..rec.txns_committed {
                let key = xssd_suite::db::keys::composite(&[i as u32]);
                assert_eq!(recovered.peek(t, &key), db.peek(t, &key), "seed {seed} txn {i}");
            }
        } else {
            assert_eq!(fsynced_txns, 0, "seed {seed}");
        }
    }
}

#[test]
fn decode_stream_never_panics_on_corruption() {
    for seed in 0..48u64 {
        let mut rng = DetRng::new(0xBAD_F00D + seed);
        let len = rng.uniform(0, 2000) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.uniform(0, 256) as u8).collect();
        // Arbitrary garbage and bit-flipped streams must decode cleanly to
        // a (possibly empty) prefix without panicking.
        for _ in 0..rng.uniform(0, 8) {
            if !bytes.is_empty() {
                // `uniform` is inclusive of its upper bound.
                let p = rng.uniform(0, bytes.len() as u64 - 1) as usize;
                bytes[p] ^= rng.uniform(0, 255) as u8;
            }
        }
        let (records, used) = decode_stream(&bytes);
        assert!(used <= bytes.len(), "seed {seed}");
        // Re-encoding the decoded prefix must reproduce those bytes.
        let mut re = Vec::new();
        for r in &records {
            r.encode_into(&mut re);
        }
        assert_eq!(&re[..], &bytes[..used], "seed {seed}");
    }
}
