//! Property-based crash-consistency tests: for arbitrary write/fsync/crash
//! schedules, the Villars durability contract must hold:
//!
//! 1. everything acknowledged by `x_fsync` survives a power failure;
//! 2. the recovered log is a clean prefix of what was written (no holes,
//!    no reordering, no corruption);
//! 3. recovery replays exactly the committed transactions.

use proptest::prelude::*;
use xssd_suite::db::{decode_stream, encode_txn, Database};
use xssd_suite::sim::SimTime;
use xssd_suite::xssd::{Cluster, VillarsConfig, XLogFile};

/// A step of the randomized schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Append a record of the given size (bounded).
    Write(usize),
    /// x_fsync everything written so far.
    Fsync,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (1usize..3000).prop_map(Step::Write),
        1 => Just(Step::Fsync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn fsynced_bytes_always_survive_crash(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut f = XLogFile::open(dev);
        let mut now = SimTime::ZERO;
        let mut written: u64 = 0;
        let mut synced: u64 = 0;
        let mut payload: Vec<u8> = Vec::new();
        for s in &steps {
            match s {
                Step::Write(n) => {
                    // Deterministic, position-dependent content so prefix
                    // equality is meaningful.
                    let chunk: Vec<u8> =
                        (0..*n).map(|i| ((written as usize + i) % 251) as u8).collect();
                    now = f.x_pwrite(&mut cl, now, &chunk).unwrap();
                    payload.extend_from_slice(&chunk);
                    written += *n as u64;
                }
                Step::Fsync => {
                    now = f.x_fsync(&mut cl, now).unwrap();
                    synced = written;
                }
            }
        }
        let report = cl.power_fail(dev, now);
        let durable = report.durable_upto[0];
        // (1) fsynced data survives.
        prop_assert!(durable >= synced, "durable {durable} < synced {synced}");
        // (2) durable is a prefix of what was written, byte-identical.
        prop_assert!(durable <= written);
        if durable > 0 {
            let (_t, bytes) = cl
                .device_mut(dev)
                .read_destaged(now, 0, 0, durable as usize)
                .expect("durable log readable");
            prop_assert_eq!(&bytes[..], &payload[..durable as usize]);
        }
    }

    #[test]
    fn recovery_replays_exactly_committed_transactions(n_txns in 1usize..25, crash_after in 0usize..25) {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut f = XLogFile::open(dev);
        let mut db = Database::new();
        let t = db.create_table("t");
        let mut now = SimTime::ZERO;
        let mut fsynced_txns = 0usize;
        for i in 0..n_txns {
            let mut ctx = db.begin();
            db.insert(
                &mut ctx,
                t,
                xssd_suite::db::keys::composite(&[i as u32]),
                vec![i as u8; 50 + (i * 37) % 300],
            );
            let bytes = encode_txn(&db.commit(ctx).unwrap());
            now = f.x_pwrite(&mut cl, now, &bytes).unwrap();
            if i < crash_after {
                now = f.x_fsync(&mut cl, now).unwrap();
                fsynced_txns = i + 1;
            }
        }
        let report = cl.power_fail(dev, now);
        let durable = report.durable_upto[0] as usize;
        let mut recovered = Database::new();
        recovered.create_table("t");
        if durable > 0 {
            let (_t2, stream) =
                cl.device_mut(dev).read_destaged(now, 0, 0, durable).expect("readable");
            let rec = xssd_suite::db::recover(&mut recovered, &stream);
            prop_assert!(rec.txns_committed >= fsynced_txns.min(n_txns));
            // Every recovered row matches the live database's row.
            for i in 0..rec.txns_committed {
                let key = xssd_suite::db::keys::composite(&[i as u32]);
                prop_assert_eq!(recovered.peek(t, &key), db.peek(t, &key));
            }
        } else {
            prop_assert_eq!(fsynced_txns, 0);
        }
    }

    #[test]
    fn decode_stream_never_panics_on_corruption(
        mut bytes in proptest::collection::vec(any::<u8>(), 0..2000),
        flips in proptest::collection::vec((0usize..2000, any::<u8>()), 0..8),
    ) {
        // Arbitrary garbage and bit-flipped streams must decode cleanly to
        // a (possibly empty) prefix without panicking.
        for (pos, val) in flips {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] ^= val;
            }
        }
        let (records, used) = decode_stream(&bytes);
        prop_assert!(used <= bytes.len());
        // Re-encoding the decoded prefix must reproduce those bytes.
        let mut re = Vec::new();
        for r in &records {
            r.encode_into(&mut re);
        }
        prop_assert_eq!(&re[..], &bytes[..used]);
    }
}
